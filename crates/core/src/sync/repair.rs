//! The requester side of the sync subsystem: installing sync payloads,
//! rate-limited request helpers, and the periodic repair timer that turns a
//! stalled replica back into a live one without a view change.

use super::serve::sync_kind_tag;
use crate::pacemaker::timer_tags;
use crate::server::{PrestigeServer, ServerRole};
use prestige_sim::Context;
use prestige_types::{
    Actor, Message, OrderedEntry, QcKind, QuorumCertificate, SyncKind, TxBlock, VcBlock,
};
use std::sync::Arc;

impl PrestigeServer {
    // ------------------------------------------------------------------
    // Requesting
    // ------------------------------------------------------------------

    /// Sends a `SyncReq`, rate-limited per kind to one request per
    /// retransmission interval: repair paths call this freely on every
    /// trigger (parked block, missing batch, stalled tip) and the limiter
    /// collapses the bursts.
    pub(crate) fn request_sync(
        &mut self,
        to: Actor,
        kind: SyncKind,
        lo: u64,
        hi: u64,
        ctx: &mut Context<Message>,
    ) {
        if hi < lo {
            return;
        }
        let slot = sync_kind_tag(kind) as usize;
        let now = ctx.now().as_ms();
        if now - self.last_sync_req_ms[slot] < self.retransmit_interval_ms() {
            return;
        }
        self.last_sync_req_ms[slot] = now;
        self.stats.sync_reqs_sent += 1;
        if kind == SyncKind::Snapshot {
            self.stats.snapshot_syncs += 1;
        }
        ctx.send(
            to,
            Message::SyncReq {
                kind,
                from: lo,
                to: hi,
            },
        );
    }

    /// Requests the certified ordered instances `[lo, hi]` from the next
    /// peer in the repair rotation (rate-limited): used when this server's
    /// commit-sign record runs ahead of what it can prove. Any of the
    /// `2f + 1` commit signers can serve the certificate and batch; the
    /// rotation finds a reachable one across successive intervals without
    /// soliciting `n - 1` duplicate megabyte responses per tick.
    pub(crate) fn request_certified_state(&mut self, lo: u64, hi: u64, ctx: &mut Context<Message>) {
        let peer = self.next_sync_peer();
        self.request_sync(peer, SyncKind::Ordered, lo, hi, ctx);
    }

    /// The next peer in the repair rotation (round-robin over the other
    /// servers), so repeated repair attempts spread across the cluster
    /// instead of hammering a possibly-dead leader.
    pub(crate) fn next_sync_peer(&mut self) -> Actor {
        let peers = self.other_servers();
        let peer = peers[self.sync_peer_cursor % peers.len()];
        self.sync_peer_cursor = self.sync_peer_cursor.wrapping_add(1);
        peer
    }

    // ------------------------------------------------------------------
    // The repair timer
    // ------------------------------------------------------------------

    /// Arms the periodic repair tick (all servers, follower and leader
    /// alike — the leader-side analogue, stalled-instance retransmission,
    /// rides the batch timer).
    pub(crate) fn arm_sync_repair_timer(&mut self, ctx: &mut Context<Message>) {
        ctx.set_timer(
            prestige_sim::SimDuration::from_ms(self.retransmit_interval_ms()),
            timer_tags::SYNC_REPAIR,
        );
    }

    /// Periodic repair: if the committed tip has not moved for a full
    /// interval *and* there is concrete evidence of missing state, ask a
    /// rotating peer for exactly the missing ranges. This is what lets a
    /// wedged pipeline (lost `CommitBlock`s, a commit-signed instance whose
    /// block never arrived, certified instances without batches) recover
    /// through sync alone instead of waiting for the client-complaint →
    /// view-change path.
    pub(crate) fn on_sync_repair_timer(&mut self, ctx: &mut Context<Message>) {
        self.arm_sync_repair_timer(ctx);
        // Election retransmission rides the same tick: elections and commits
        // stall independently, so it runs before the tip-progress gate.
        self.retransmit_election(ctx);
        let tip = self.store.latest_seq().0;
        let progressed = tip != self.last_repair_tip;
        self.last_repair_tip = tip;
        if progressed {
            return; // Commits are flowing; nothing is wedged.
        }
        // (a) Parked out-of-order blocks: their predecessors were lost.
        if let Some((&first_parked, _)) = self.pending_commit_blocks.iter().next() {
            if first_parked > tip + 1 {
                let peer = self.next_sync_peer();
                let kind = Self::catchup_kind(tip + 1, first_parked - 1);
                self.request_sync(peer, kind, tip + 1, first_parked - 1, ctx);
            }
        } else if self.signed_commit_tip > tip {
            // (b) Commit-signed instances whose `CommitBlock` never arrived:
            // the commit QC may have assembled at a leader we can no longer
            // reach — any replica that applied it can serve the blocks.
            let peer = self.next_sync_peer();
            let kind = Self::catchup_kind(tip + 1, self.signed_commit_tip);
            self.request_sync(peer, kind, tip + 1, self.signed_commit_tip, ctx);
        }
        // (c) Certified-state holes below the signed tip: we are on the hook
        // for instances we cannot prove; fetch their batches and QCs.
        let cert_tip = self.certified_ord_tip().0;
        if self.signed_commit_tip > cert_tip {
            self.request_certified_state(cert_tip + 1, self.signed_commit_tip, ctx);
        }
    }

    /// Catch-up request kind for a missing block range: a hole wider than
    /// one serve budget means this replica is *far* behind (fresh restart
    /// from an old checkpoint, long partition) — ask for a snapshot, which
    /// also carries the view history and the stable checkpoint certificate,
    /// instead of paging block-by-block with no checkpoint to GC against.
    pub(crate) fn catchup_kind(lo: u64, hi: u64) -> SyncKind {
        if hi.saturating_sub(lo) + 1 > super::MAX_SYNC_BLOCKS as u64 {
            SyncKind::Snapshot
        } else {
            SyncKind::Transaction
        }
    }

    /// Election-message retransmission, folded into the repair tick: a
    /// candidate whose `Camp` — or a leader-elect whose `NewVcBlock` — was
    /// lost would otherwise stall the election until its timeout forces a
    /// fresh (and more expensive) campaign round. Voters re-send their
    /// recorded vote idempotently (criterion C1 still holds), adopters
    /// re-acknowledge the identical vcBlock.
    fn retransmit_election(&mut self, ctx: &mut Context<Message>) {
        if self.role == ServerRole::Candidate {
            if let Some(message) = self.campaign_message() {
                self.stats.election_retransmits += 1;
                ctx.broadcast(self.other_servers(), message);
            }
        } else if let Some((block, _)) = &self.pending_vc_block {
            let block = block.clone();
            let sig = self.sign(crate::storage::vc_block_digest(&block).as_ref());
            self.stats.election_retransmits += 1;
            ctx.broadcast(self.other_servers(), Message::NewVcBlock { block, sig });
        }
    }

    // ------------------------------------------------------------------
    // Installing responses
    // ------------------------------------------------------------------

    /// Receive-side tag for the ordered-entry throttle (distinct from the
    /// serve-side tags 0–2 in [`sync_kind_tag`]).
    const ORDERED_RECV_TAG: u8 = 3;

    /// Installs blocks and certified ordered entries received through sync
    /// after validating their QCs.
    pub(crate) fn handle_sync_resp(
        &mut self,
        from: Actor,
        vc_blocks: Vec<VcBlock>,
        tx_blocks: Vec<TxBlock>,
        ordered: Vec<OrderedEntry>,
        ckpt: Option<QuorumCertificate>,
        ctx: &mut Context<Message>,
    ) {
        let verifier_quorum = self.config.quorum();

        // Transaction blocks: validate QCs (memoized, off-loop when a verify
        // pool is attached), then apply in order through the same path as
        // live commits (which also notifies clients and resolves complaints).
        // Out-of-order verdicts are safe: `apply_committed_block` buffers
        // blocks arriving ahead of a gap.
        let mut txs = tx_blocks;
        txs.sort_by_key(|b| b.n.0);
        for block in txs {
            if block.n <= self.store.latest_seq() {
                continue;
            }
            self.verify_and_apply_block(Arc::new(block), ctx);
        }

        // Certified ordered entries: each is self-validating — the ordering
        // QC must be genuine and its digest must be the batch digest of
        // exactly the carried payload. A valid entry is adopted into the
        // certificate store (keeping the freshest ordering view per
        // instance), which both repairs this server's own claims and lets it
        // follow an elected leader's re-proposals it would otherwise refuse.
        //
        // Unlike live replication traffic, these digests are recomputed
        // *inline* even when a verify pool is attached (entries are rare,
        // and a parked sync entry has no retransmission to collapse onto) —
        // so the path is defended instead: unsolicited senders are
        // throttled per peer, and a batch larger than any honest ordering
        // could produce is dropped before a byte of it is hashed.
        if !ordered.is_empty() {
            let now = ctx.now().as_ms();
            let limiter_key = (from, Self::ORDERED_RECV_TAG);
            if let Some(last) = self.sync_served_ms.get(&limiter_key) {
                if now - last < super::SERVE_MIN_INTERVAL_MS {
                    self.stats.sync_throttled += 1;
                    return;
                }
            }
            self.sync_served_ms.insert(limiter_key, now);
        }
        let max_batch = self.config.batch_size.max(1) * 4;
        for entry in ordered {
            if entry.batch.len() > max_batch {
                continue; // No honest ordering is this large; never hash it.
            }
            let n = entry.qc.seq;
            if entry.qc.kind != QcKind::Ordering || n <= self.store.latest_seq() {
                continue;
            }
            // Same far-future bound as live orderings: sync must not become
            // a way around the `ordered_batches` growth limit.
            if n.0 > self.store.latest_seq().0 + self.pipeline_depth() as u64 + 1024 {
                continue;
            }
            if let Some(existing) = self.ord_qcs.get(&n.0) {
                if existing.view > entry.qc.view {
                    // A stale entry must be dropped whole: `record_ord_qc`
                    // would keep the fresher retained certificate, and
                    // adopting the older batch would permanently pair a
                    // batch with a certificate whose digest it cannot match
                    // (un-repairable, since an equal-view correct entry
                    // would then be skipped as "nothing new").
                    continue;
                }
                if existing.view == entry.qc.view && self.ordered_batches.contains_key(&n.0) {
                    continue; // Nothing new here.
                }
            }
            ctx.charge_cpu_ms(crate::replication::PER_TX_CPU_MS * entry.batch.len() as f64);
            if Self::batch_digest(entry.qc.view, n, &entry.batch) != entry.qc.digest {
                continue;
            }
            if !self.verify_qc_cached(&entry.qc, verifier_quorum, ctx) {
                continue;
            }
            self.record_ord_qc(n.0, &entry.qc);
            self.remember_ordered_batch(n.0, &entry.batch);
        }

        // View-change blocks: validate vc_QCs and install; installing a higher
        // view also updates the local role/timers. View changes are rare and
        // ordering-critical, so they verify inline (memoized).
        let mut vcs = vc_blocks;
        vcs.sort_by_key(|b| b.v.0);
        let mut highest_installed = None;
        for block in vcs {
            if block.v <= self.store.current_view() {
                continue;
            }
            let ok = match &block.vc_qc {
                Some(qc) => {
                    qc.kind == QcKind::ViewChange
                        && qc.view == block.v
                        && self.verify_qc_cached(qc, verifier_quorum, ctx)
                }
                None => false,
            };
            if !ok {
                continue;
            }
            self.wal_append(prestige_storage::WalRecordRef::ViewInstall(&block));
            if self.store.insert_vc_block(block.clone()) {
                highest_installed = Some(block.leader_id);
            }
        }
        if let Some(leader) = highest_installed {
            self.note_view_installed(ctx, leader);
        }

        // A snapshot response carries the server's stable checkpoint
        // certificate: adopt it now that the blocks above are applied (if
        // the chain has not yet reached the certified height, the next
        // snapshot round — after more blocks land — will).
        if let Some(cert) = ckpt {
            self.handle_ckpt_cert(cert, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_crypto::{sign_share, KeyRegistry, QcBuilder};
    use prestige_sim::{Context, Effects, Emission, SimRng, SimTime};
    use prestige_types::{
        ClientId, ClusterConfig, Digest, Proposal, QuorumCertificate, SeqNum, ServerId,
        Transaction, View,
    };

    fn with_ctx_at(
        server: &mut PrestigeServer,
        now_ms: f64,
        f: impl FnOnce(&mut PrestigeServer, &mut Context<Message>),
    ) -> Effects<Message> {
        let mut effects = Effects::new();
        let mut rng = SimRng::new(3);
        let mut next_timer_id = 100;
        let me = Actor::Server(server.id());
        let mut ctx = Context::new(
            SimTime::from_ms(now_ms),
            me,
            &mut rng,
            &mut next_timer_id,
            &mut effects,
        );
        f(server, &mut ctx);
        effects
    }

    fn ordering_qc(
        registry: &KeyRegistry,
        view: View,
        n: u64,
        digest: Digest,
        quorum: u32,
    ) -> QuorumCertificate {
        let mut builder = QcBuilder::new(QcKind::Ordering, view, SeqNum(n), digest, quorum);
        for s in 0..quorum {
            let share = sign_share(
                registry,
                ServerId(s),
                QcKind::Ordering,
                view,
                SeqNum(n),
                &digest,
            )
            .unwrap();
            builder.add_share(registry, &share).unwrap();
        }
        builder.assemble().unwrap()
    }

    fn entry(
        registry: &KeyRegistry,
        view: View,
        n: u64,
        quorum: u32,
        tamper: bool,
    ) -> OrderedEntry {
        let batch = vec![Proposal::new(
            Transaction::with_size(ClientId(1), n, 16),
            Digest::ZERO,
        )];
        let mut digest = PrestigeServer::batch_digest(view, SeqNum(n), &batch);
        if tamper {
            digest.0[0] ^= 0xFF; // QC over a different payload than carried
        }
        OrderedEntry {
            batch: Arc::new(batch),
            qc: ordering_qc(registry, view, n, digest, quorum),
        }
    }

    #[test]
    fn valid_ordered_entries_are_adopted_and_certify_the_tip() {
        let registry = KeyRegistry::new(5, 4, 2);
        let mut server =
            PrestigeServer::new(ServerId(1), ClusterConfig::new(4), registry.clone(), 0);
        let quorum = server.config.quorum();
        let entries = vec![
            entry(&registry, View(1), 1, quorum, false),
            entry(&registry, View(1), 2, quorum, false),
        ];
        with_ctx_at(&mut server, 1.0, |s, ctx| {
            s.handle_sync_resp(
                Actor::Server(ServerId(2)),
                Vec::new(),
                Vec::new(),
                entries,
                None,
                ctx,
            );
        });
        assert_eq!(server.certified_ord_tip(), SeqNum(2));
        assert!(server.ordered_batches.contains_key(&1));
        assert!(server.ord_qcs.contains_key(&2));
    }

    #[test]
    fn mismatched_or_forged_ordered_entries_are_dropped() {
        let registry = KeyRegistry::new(5, 4, 2);
        let mut server =
            PrestigeServer::new(ServerId(1), ClusterConfig::new(4), registry.clone(), 0);
        let quorum = server.config.quorum();
        // Entry 1: QC digest does not match the carried batch.
        let mismatched = entry(&registry, View(1), 1, quorum, true);
        // Entry 2: tampered aggregate.
        let mut forged = entry(&registry, View(1), 2, quorum, false);
        forged.qc.aggregate[0] ^= 0xFF;
        with_ctx_at(&mut server, 1.0, |s, ctx| {
            s.handle_sync_resp(
                Actor::Server(ServerId(2)),
                Vec::new(),
                Vec::new(),
                vec![mismatched, forged],
                None,
                ctx,
            );
        });
        assert_eq!(server.certified_ord_tip(), SeqNum(0));
        assert!(server.ordered_batches.is_empty());
        assert!(server.ord_qcs.is_empty());
    }

    #[test]
    fn repair_timer_requests_missing_ranges_only_when_stalled() {
        let registry = KeyRegistry::new(5, 4, 2);
        let mut server =
            PrestigeServer::new(ServerId(1), ClusterConfig::new(4), registry.clone(), 0);
        // Commit-signed instance 3 that never committed here.
        server.signed_commit_tip = 3;
        server
            .signed_commit_info
            .insert(3, (View(1), Digest([1; 32])));

        // A tick right after commit progress does nothing: the tip moved
        // since the last observation, so nothing is wedged.
        server.last_repair_tip = 99; // pretend the tip was elsewhere before
        let effects = with_ctx_at(&mut server, 100.0, |s, ctx| {
            s.on_sync_repair_timer(ctx);
        });
        assert!(
            effects
                .emissions
                .iter()
                .all(|e| !matches!(e, Emission::Send(_, Message::SyncReq { .. }))),
            "a progressing tip must not trigger repair traffic"
        );
        // The next tick sees the tip unchanged: the stall is real — repair.
        let effects = with_ctx_at(&mut server, 400.0, |s, ctx| {
            s.on_sync_repair_timer(ctx);
        });
        let reqs: Vec<(SyncKind, u64, u64)> = effects
            .emissions
            .iter()
            .filter_map(|e| match e {
                Emission::Send(_, Message::SyncReq { kind, from, to }) => Some((*kind, *from, *to)),
                Emission::Broadcast(_, Message::SyncReq { kind, from, to }) => {
                    Some((*kind, *from, *to))
                }
                _ => None,
            })
            .collect();
        assert!(
            reqs.contains(&(SyncKind::Transaction, 1, 3)),
            "the signed-but-uncommitted range must be requested: {reqs:?}"
        );
        assert!(
            reqs.contains(&(SyncKind::Ordered, 1, 3)),
            "the uncertified signed range must be requested: {reqs:?}"
        );
    }

    #[test]
    fn repair_requests_rotate_across_peers() {
        let registry = KeyRegistry::new(5, 4, 2);
        let mut server =
            PrestigeServer::new(ServerId(1), ClusterConfig::new(4), registry.clone(), 0);
        let a = server.next_sync_peer();
        let b = server.next_sync_peer();
        let c = server.next_sync_peer();
        let d = server.next_sync_peer();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, d, "three peers → period three");
        for p in [a, b, c] {
            assert_ne!(p, Actor::Server(ServerId(1)), "never self");
        }
    }

    #[test]
    fn request_sync_is_rate_limited_per_kind() {
        let registry = KeyRegistry::new(5, 4, 2);
        let mut server =
            PrestigeServer::new(ServerId(1), ClusterConfig::new(4), registry.clone(), 0);
        let peer = Actor::Server(ServerId(0));
        let effects = with_ctx_at(&mut server, 100.0, |s, ctx| {
            s.request_sync(peer, SyncKind::Transaction, 1, 2, ctx);
            s.request_sync(peer, SyncKind::Transaction, 1, 2, ctx); // limited
            s.request_sync(peer, SyncKind::Ordered, 1, 2, ctx); // other slot
        });
        let sent = effects
            .emissions
            .iter()
            .filter(|e| matches!(e, Emission::Send(_, Message::SyncReq { .. })))
            .count();
        assert_eq!(sent, 2);
        assert_eq!(server.stats().sync_reqs_sent, 2);
    }

    #[test]
    fn catchup_kind_escalates_wide_gaps_to_snapshot() {
        let budget = crate::sync::MAX_SYNC_BLOCKS as u64;
        // Exactly one serve budget still pages block-by-block…
        assert_eq!(
            PrestigeServer::catchup_kind(1, budget),
            SyncKind::Transaction
        );
        // …one block past it escalates to a snapshot round.
        assert_eq!(
            PrestigeServer::catchup_kind(1, budget + 1),
            SyncKind::Snapshot
        );
        assert_eq!(PrestigeServer::catchup_kind(7, 7), SyncKind::Transaction);
    }

    #[test]
    fn snapshot_requests_are_counted() {
        let registry = KeyRegistry::new(5, 4, 2);
        let mut server =
            PrestigeServer::new(ServerId(1), ClusterConfig::new(4), registry.clone(), 0);
        let peer = Actor::Server(ServerId(0));
        with_ctx_at(&mut server, 100.0, |s, ctx| {
            s.request_sync(peer, SyncKind::Snapshot, 1, 1000, ctx);
        });
        assert_eq!(server.stats().snapshot_syncs, 1);
        assert_eq!(server.stats().sync_reqs_sent, 1);
    }
}
