//! The recovery plane's sync subsystem — the paper's `SyncUp` function
//! (§4.2.3) grown into a first-class, rate-limited, backpressured
//! retransmission layer.
//!
//! Because quorum certificates only require `2f + 1` signers, up to `f`
//! correct servers can lag behind in either log; and because quorum
//! messages themselves can be lost (backpressure shed, partitions, injected
//! chaos), a replica can find itself *wedged*: commit-signed instances it
//! never saw commit, parked out-of-order blocks whose predecessors never
//! arrive, certified instances whose batches it lacks. Before this
//! subsystem, the only repair was the client-complaint → view-change path —
//! every burst of loss bought a full election pause.
//!
//! Four sync kinds close every gap:
//!
//! * [`prestige_types::SyncKind::ViewChange`] — missing `vcBlock`s (stale
//!   voters catch up before validating a campaign);
//! * [`prestige_types::SyncKind::Transaction`] — missing committed
//!   `txBlock`s (commit-gap repair);
//! * [`prestige_types::SyncKind::Ordered`] — **uncommitted** ordered batches
//!   together with their ordering QCs: certified state transfer for
//!   instances that may have committed elsewhere, closing the "partitioned
//!   batch-holder" election stall documented by PR 4;
//! * [`prestige_types::SyncKind::Snapshot`] — bulk catch-up for a replica
//!   that is further behind than one serve budget (fresh restart from an
//!   old checkpoint, long partition): committed blocks *plus* the view
//!   history *plus* the server's stable checkpoint certificate, so the
//!   rejoiner can re-establish a GC horizon while it pages the rest.
//!
//! The repair timer also carries **election retransmission** (`Camp` /
//! `NewVcBlock` re-broadcast, idempotent `VoteCP` re-send): view-change
//! messages lost to chaos previously stalled elections until the next
//! timeout escalation.
//!
//! Structure:
//!
//! * [`serve`] — answering `SyncReq` ranges, per-peer rate-limited and
//!   byte-budgeted so a Byzantine or looping requester cannot turn this
//!   server into a payload-assembly treadmill;
//! * [`repair`] — the requester side: validating and installing `SyncResp`
//!   payloads, the rate-limited request helper, and the periodic repair
//!   timer that notices a stalled committed tip and asks a *rotating* peer
//!   (the leader may be the dead node) for exactly the missing ranges.
//!
//! Blocks and ordered entries obtained through sync are validated through
//! their quorum certificates exactly like live traffic; sync never widens
//! what a peer can make this server believe, only when it learns it.

mod repair;
mod serve;

/// Upper bound on blocks/entries returned by one sync response, to keep
/// individual messages bounded (a requester simply asks again for the
/// remainder).
pub(crate) const MAX_SYNC_BLOCKS: usize = 256;

/// Byte budget for one sync response (backpressure): payload assembly stops
/// once the accumulated wire size crosses this bound, whatever the requested
/// range. At least one item is always served so a huge single block cannot
/// starve its own repair.
pub(crate) const MAX_SYNC_RESP_BYTES: usize = 1 << 20;

/// Minimum interval (ms) between two responses served to the same
/// `(peer, sync kind)` pair. Honest repair is timer-paced far above this;
/// the limit only bites peers hammering the serve path.
pub(crate) const SERVE_MIN_INTERVAL_MS: f64 = 10.0;
