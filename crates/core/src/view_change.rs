//! The active view-change protocol (§4.2).
//!
//! Handlers for the full Figure-5 state machine:
//!
//! * **failure detection** — client complaints (`Compt`) are relayed to the
//!   leader; unresolved complaints trigger an inspection (`ConfVC`), and
//!   `f + 1` matching `ReVC` replies form a `conf_QC` that justifies a view
//!   change;
//! * **redeemer** — the campaigner consults the reputation engine, then solves
//!   the reputation-determined puzzle (modeled or real proof of work);
//! * **candidate** — broadcasts a `Camp` message; voters enforce the criteria
//!   C1–C5 (one vote per view, confirmed view change, up-to-date log,
//!   reproducible reputation penalty, verified computation); `2f + 1` votes
//!   form the `vc_QC`;
//! * **leader** — prepares the new `vcBlock` (only the winner's rp/ci change),
//!   collects `2f + 1` `vcYes` acknowledgements, and resumes replication;
//! * **policy rotations** — the timing policies (r10 / r30) of §6.2, where
//!   campaigns carry no `conf_QC` and voters check rotation due-ness locally;
//! * **Byzantine attack hooks** — F4 repeated campaigns under strategies S1/S2.

use crate::faults::AttackStrategy;
use crate::pacemaker::timer_tags;
use crate::server::{CampaignState, ComplaintState, PrestigeServer, ServerRole};
use crate::storage::vc_block_digest;
use prestige_crypto::{hash_many, sign_share, PowPuzzle, PowSolution, PowSolver, QcBuilder};
use prestige_reputation::CalcRpInput;
use prestige_sim::{Context, TimerId};
use prestige_types::{
    Actor, ClientId, Digest, Message, PartialSig, Proposal, QcKind, QuorumCertificate, SeqNum,
    ServerId, SyncKind, VcBlock, View,
};

impl PrestigeServer {
    /// The digest signed by `ReVC` shares confirming that a view change away
    /// from `view` is necessary.
    pub(crate) fn confvc_digest(view: View) -> Digest {
        hash_many([b"confvc".as_slice(), &view.0.to_be_bytes()])
    }

    /// The digest signed by election votes (`VoteCP` shares) for a candidate.
    pub(crate) fn campaign_digest(
        candidate: ServerId,
        new_view: View,
        rp: i64,
        nonce: u64,
        hash_result: &Digest,
    ) -> Digest {
        hash_many([
            b"camp".as_slice(),
            &(candidate.0 as u64).to_be_bytes(),
            &new_view.0.to_be_bytes(),
            &rp.to_be_bytes(),
            &nonce.to_be_bytes(),
            hash_result.as_ref(),
        ])
    }

    /// Evaluates Algorithm 1 for a campaigner (`who`) targeting `new_view`,
    /// reading every input from the local state machine.
    pub(crate) fn calc_rp_for(
        &self,
        who: ServerId,
        new_view: View,
    ) -> prestige_reputation::RpOutcome {
        let input = CalcRpInput {
            current_view: self.store.current_view(),
            new_view,
            current_rp: self.store.current_rp(who),
            current_ci: self.store.current_ci(who),
            latest_tx_seq: self.store.latest_seq(),
            penalty_history: self.store.penalty_history(who),
        };
        self.engine.calc_rp(&input)
    }

    // ------------------------------------------------------------------
    // Failure detection (§4.2.1)
    // ------------------------------------------------------------------

    /// Handles a client complaint: relay it to the leader, arm the grace
    /// timer, and keep the proposal so a later leader can commit it.
    pub(crate) fn handle_compt(
        &mut self,
        _from: Actor,
        proposal: Proposal,
        client_sig: [u8; 32],
        ctx: &mut Context<Message>,
    ) {
        self.charge_verify_cost(ctx);
        let key = proposal.tx.key();
        // Already committed? Nothing to inspect.
        if self.store.latest_seq() > SeqNum(0) && self.complaints.contains_key(&key) {
            // Complaint already being tracked.
            return;
        }
        // Keep the proposal so it can be committed by this or a later leader.
        if self.seen_tx.insert(key) {
            self.pending_proposals.push(proposal.clone());
        }
        if self.role == ServerRole::Leader && !self.behavior.silent_as_leader() {
            // The leader treats the complaint as a (re-)proposal; it will be
            // committed by the normal batching path.
            return;
        }
        self.stats.complaints_relayed += 1;
        let view = self.current_view();
        self.complaints.insert(
            key,
            ComplaintState {
                proposal: proposal.clone(),
                view,
            },
        );
        // Relay to the leader.
        ctx.send(
            Actor::Server(self.current_leader()),
            Message::Compt {
                proposal,
                client_sig,
            },
        );
        // Wait for the leader to commit before suspecting it. Attackers use a
        // zero grace period to push view changes as aggressively as possible.
        let grace = if self.behavior.attacks_view_changes() {
            prestige_sim::SimDuration::ZERO
        } else {
            self.pacemaker.complaint_grace()
        };
        let timer = ctx.set_timer(grace, timer_tags::COMPLAINT);
        self.complaint_timers.insert(timer, key);
    }

    /// Complaint grace timer: if the complained-about transaction is still
    /// uncommitted, broadcast a `ConfVC` inspection.
    pub(crate) fn on_complaint_timer(&mut self, id: TimerId, ctx: &mut Context<Message>) {
        let key = match self.complaint_timers.remove(&id) {
            Some(k) => k,
            None => return,
        };
        if !self.complaints.contains_key(&key) {
            return; // Committed in the meantime: the leader is correct.
        }
        let view = self.current_view();
        let digest = Self::confvc_digest(view);
        // Start collecting ReVC replies (including our own share).
        let builder = self.confvc_builders.entry(view.0).or_insert_with(|| {
            QcBuilder::new(
                QcKind::Confirm,
                view,
                SeqNum(0),
                digest,
                self.config.replicas.confirm_quorum(),
            )
        });
        if let Some(share) = sign_share(
            &self.registry,
            self.id,
            QcKind::Confirm,
            view,
            SeqNum(0),
            &digest,
        ) {
            let _ = builder.add_share(&self.registry, &share);
        }
        let sig = self.sign(digest.as_ref());
        ctx.broadcast(
            self.other_servers(),
            Message::ConfVC {
                view,
                tx_key: key,
                sig,
            },
        );
        let timeout = self.pacemaker.election_timeout(ctx.rng());
        let timer = ctx.set_timer(timeout, timer_tags::CONF_VC);
        self.confvc_timers.insert(timer, view.0);
    }

    /// Handles a peer's `ConfVC` inspection: endorse it only if this server
    /// received the same complaint (which is what stops faulty clients and
    /// servers from manufacturing view changes under a correct leader).
    pub(crate) fn handle_conf_vc(
        &mut self,
        from: Actor,
        view: View,
        tx_key: (ClientId, u64),
        sig: [u8; 32],
        ctx: &mut Context<Message>,
    ) {
        if view < self.current_view() {
            return;
        }
        self.charge_verify_cost(ctx);
        let digest = Self::confvc_digest(view);
        if !self.registry.verify(from, digest.as_ref(), &sig) {
            return;
        }
        if !self.complaints.contains_key(&tx_key) {
            return;
        }
        if let Some(share) = sign_share(
            &self.registry,
            self.id,
            QcKind::Confirm,
            view,
            SeqNum(0),
            &digest,
        ) {
            ctx.send(
                from,
                Message::ReVC {
                    view,
                    tx_key,
                    share,
                },
            );
        }
    }

    /// Handles a `ReVC` endorsement: `f + 1` of them form the `conf_QC` and
    /// the server transitions to redeemer.
    pub(crate) fn handle_re_vc(
        &mut self,
        view: View,
        _tx_key: (ClientId, u64),
        share: PartialSig,
        ctx: &mut Context<Message>,
    ) {
        if view != self.current_view() {
            return;
        }
        self.charge_verify_cost(ctx);
        let builder = match self.confvc_builders.get_mut(&view.0) {
            Some(b) => b,
            None => return,
        };
        if builder.add_share(&self.registry, &share).is_err() || !builder.complete() {
            return;
        }
        let conf_qc = match builder.assemble() {
            Ok(qc) => qc,
            Err(_) => return,
        };
        self.confvc_builders.remove(&view.0);
        self.stats.view_changes_confirmed += 1;
        self.start_campaign(view.next(), Some(conf_qc), ctx);
    }

    /// ConfVC collection timeout: the inspection failed to gather `f + 1`
    /// endorsements, so the complaining client is tagged as faulty.
    pub(crate) fn on_confvc_timer(&mut self, id: TimerId, ctx: &mut Context<Message>) {
        let view = match self.confvc_timers.remove(&id) {
            Some(v) => v,
            None => return,
        };
        let _ = ctx;
        if let Some(builder) = self.confvc_builders.get(&view) {
            if !builder.complete() {
                self.confvc_builders.remove(&view);
                // Per §4.2.1 the complaining client is tagged; the complaint
                // entries for the stale view are dropped.
                self.complaints.retain(|_, c| c.view.0 != view);
            }
        }
    }

    // ------------------------------------------------------------------
    // Redeemer (§4.2.2)
    // ------------------------------------------------------------------

    /// Transitions to redeemer and starts the reputation-determined work for
    /// a campaign targeting `new_view`.
    pub(crate) fn start_campaign(
        &mut self,
        new_view: View,
        conf_qc: Option<QuorumCertificate>,
        ctx: &mut Context<Message>,
    ) {
        if self.role == ServerRole::Leader && !self.behavior.attacks_view_changes() {
            return; // A correct current leader does not campaign against itself.
        }
        if new_view <= self.store.current_view() {
            return;
        }
        if let Some(c) = &self.campaign {
            if c.new_view >= new_view {
                return; // Already campaigning for this view or a later one.
            }
        }
        let outcome = self.calc_rp_for(self.id, new_view);
        // S2 attackers only strike when the engine projects a compensation.
        if self.behavior.strategy() == Some(AttackStrategy::WhenCompensable) && !outcome.compensated
        {
            return;
        }
        let rp = outcome.new_rp;
        let ci = outcome.new_ci;
        let tx_digest = self.store.latest_tx_digest();
        let tx_seq = self.store.latest_seq();
        let ord_seq = self.ordered_contiguous_tip();

        // Replication stops while campaigning (§4.2.2 line 34).
        self.role = ServerRole::Redeemer;
        self.stats.campaigns_started += 1;

        // Solve the puzzle. The solver either iterates SHA-256 for real (the
        // cost is charged as CPU time) or models the solve duration from the
        // geometric attempt distribution (DESIGN.md §1).
        let puzzle = PowPuzzle::new(tx_digest, rp);
        let (solution, attempts) = self.pow_solver.solve(&puzzle, ctx.rng().rng());
        let fallback_rate = 1.0e7;
        let solve_ms = self.pow_solver.attempts_to_ms(attempts, fallback_rate);
        self.stats.last_pow_ms = solve_ms;
        self.stats.pow_ms_total += solve_ms;
        self.stats
            .campaign_log
            .push((ctx.now().as_ms(), rp, solve_ms));

        // A campaigner whose required work exceeds the configured bound cannot
        // afford the puzzle (its computation capability γ is exhausted).
        if let Some(max_ms) = self.config.pow.max_solve_ms {
            if solve_ms > max_ms {
                self.role = ServerRole::Follower;
                self.campaign = None;
                return;
            }
        }

        self.campaign = Some(CampaignState {
            old_view: self.store.current_view(),
            new_view,
            rp,
            ci,
            conf_qc,
            solution: Some(solution),
            vote_builder: None,
            tx_digest,
            tx_seq,
            ord_seq,
        });
        match self.pow_solver {
            PowSolver::Real { .. } => {
                // The real solver already burned the attempts; charge them as
                // CPU time and move on immediately.
                ctx.charge_cpu_ms(solve_ms);
                let timer = ctx.set_timer(prestige_sim::SimDuration::ZERO, timer_tags::POW_DONE);
                self.pow_timer = Some(timer);
            }
            PowSolver::Modeled { .. } => {
                let timer = ctx.set_timer(
                    prestige_sim::SimDuration::from_ms(solve_ms),
                    timer_tags::POW_DONE,
                );
                self.pow_timer = Some(timer);
            }
        }
    }

    /// Puzzle finished: transition redeemer → candidate and broadcast the
    /// campaign.
    pub(crate) fn on_pow_done(&mut self, id: TimerId, ctx: &mut Context<Message>) {
        if self.pow_timer != Some(id) || self.role != ServerRole::Redeemer {
            return;
        }
        self.pow_timer = None;
        let campaign = match self.campaign.as_mut() {
            Some(c) => c,
            None => return,
        };
        // A higher view may have been installed while computing.
        if campaign.new_view <= self.store.current_view() {
            self.campaign = None;
            self.role = ServerRole::Follower;
            return;
        }
        self.role = ServerRole::Candidate;
        let solution = campaign.solution.expect("redeemer stored a solution");
        let digest = Self::campaign_digest(
            self.id,
            campaign.new_view,
            campaign.rp,
            solution.nonce,
            &solution.hash_result,
        );
        let mut vote_builder = QcBuilder::new(
            QcKind::ViewChange,
            campaign.new_view,
            SeqNum(0),
            digest,
            self.config.quorum(),
        );
        if let Some(share) = sign_share(
            &self.registry,
            self.id,
            QcKind::ViewChange,
            campaign.new_view,
            SeqNum(0),
            &digest,
        ) {
            let _ = vote_builder.add_share(&self.registry, &share);
        }
        campaign.vote_builder = Some(vote_builder);
        self.voted_views.insert(campaign.new_view.0);

        let message = Message::Camp {
            conf_qc: campaign.conf_qc.clone(),
            view: campaign.old_view,
            new_view: campaign.new_view,
            rp: campaign.rp,
            ci: campaign.ci,
            nonce: solution.nonce,
            hash_result: solution.hash_result,
            latest_seq: campaign.tx_seq,
            latest_ord_seq: campaign.ord_seq,
            latest_tx_digest: campaign.tx_digest,
            sig: self.sign(digest.as_ref()),
        };
        ctx.broadcast(self.other_servers(), message);
        let timeout = self.pacemaker.election_timeout(ctx.rng());
        self.election_timer = Some(ctx.set_timer(timeout, timer_tags::ELECTION));
    }

    // ------------------------------------------------------------------
    // Voting (§4.2.3, criteria C1–C5)
    // ------------------------------------------------------------------

    /// Handles a candidate's campaign message.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_camp(
        &mut self,
        from: Actor,
        conf_qc: Option<QuorumCertificate>,
        view: View,
        new_view: View,
        rp: i64,
        ci: u64,
        nonce: u64,
        hash_result: Digest,
        latest_seq: SeqNum,
        latest_ord_seq: SeqNum,
        latest_tx_digest: Digest,
        sig: [u8; 32],
        ctx: &mut Context<Message>,
    ) {
        let candidate = match from {
            Actor::Server(s) => s,
            Actor::Client(_) => return,
        };
        // Stale campaigns are ignored.
        if new_view <= self.store.current_view() {
            return;
        }
        // C1: vote at most once per view.
        if self.voted_views.contains(&new_view.0) {
            return;
        }
        self.charge_verify_cost(ctx);
        let campaign_digest = Self::campaign_digest(candidate, new_view, rp, nonce, &hash_result);
        if !self.registry.verify(from, campaign_digest.as_ref(), &sig) {
            return;
        }

        // C2: the view change must be justified — either by a conf_QC of
        // threshold f+1, or (for campaigns without one) by the local policy
        // clock saying a rotation is due.
        match &conf_qc {
            Some(qc) => {
                let confirm_quorum = self.config.replicas.confirm_quorum();
                if qc.kind != QcKind::Confirm || !self.verify_qc_cached(qc, confirm_quorum, ctx) {
                    return;
                }
            }
            None => {
                if !self.rotation_due(ctx.now()) {
                    return;
                }
            }
        }

        // Sync view-change blocks if the candidate is operating in a higher
        // view than we know about; the vote is retried after the sync.
        if view > self.store.current_view() {
            ctx.send(
                from,
                Message::SyncReq {
                    kind: SyncKind::ViewChange,
                    from: self.store.current_view().0 + 1,
                    to: view.0,
                },
            );
            return;
        }

        // C3: the candidate's replication must be at least as up-to-date.
        if latest_seq < self.store.latest_seq() {
            return;
        }
        // C3, ordered-state half (committed-instance preservation): a commit
        // share this server signed may have completed a commit QC at a leader
        // nobody can reach any more, so the next leader must hold the ordered
        // batches up to that point — contiguously, at their original sequence
        // numbers — to re-propose them. Refusing here makes the guarantee a
        // quorum-intersection property: any election quorum contains at least
        // one correct signer of the highest possibly-committed instance.
        if latest_ord_seq < latest_seq || latest_ord_seq.0 < self.signed_commit_tip {
            return;
        }
        if latest_seq > self.store.latest_seq() {
            // We are behind: ask the candidate for the missing txBlocks so our
            // state machine catches up (the vote itself does not need them).
            ctx.send(
                from,
                Message::SyncReq {
                    kind: SyncKind::Transaction,
                    from: self.store.latest_seq().0 + 1,
                    to: latest_seq.0,
                },
            );
        }

        // C4: the claimed reputation penalty and compensation index must be
        // reproducible from the candidate's recorded history.
        let input = CalcRpInput {
            current_view: view,
            new_view,
            current_rp: self.store.current_rp(candidate),
            current_ci: self.store.current_ci(candidate),
            latest_tx_seq: latest_seq,
            penalty_history: self.store.penalty_history(candidate),
        };
        let outcome = self.engine.calc_rp(&input);
        if outcome.new_rp != rp || outcome.new_ci != ci {
            return;
        }

        // C5: the performed computation must match the penalty (one hash).
        self.charge_verify_cost(ctx);
        let puzzle = PowPuzzle::new(latest_tx_digest, rp);
        let solution = PowSolution { nonce, hash_result };
        if self.pow_solver.verify(&puzzle, &solution).is_err() {
            return;
        }

        // All criteria satisfied: vote.
        self.voted_views.insert(new_view.0);
        self.stats.votes_cast += 1;
        if let Some(share) = sign_share(
            &self.registry,
            self.id,
            QcKind::ViewChange,
            new_view,
            SeqNum(0),
            &campaign_digest,
        ) {
            ctx.send(
                from,
                Message::VoteCP {
                    new_view,
                    candidate,
                    share,
                },
            );
        }
    }

    /// Handles an election vote; `2f + 1` votes elect this candidate.
    pub(crate) fn handle_vote_cp(
        &mut self,
        new_view: View,
        candidate: ServerId,
        share: PartialSig,
        ctx: &mut Context<Message>,
    ) {
        if candidate != self.id || self.role != ServerRole::Candidate {
            return;
        }
        self.charge_verify_cost(ctx);
        let campaign = match self.campaign.as_mut() {
            Some(c) if c.new_view == new_view => c,
            _ => return,
        };
        let builder = match campaign.vote_builder.as_mut() {
            Some(b) => b,
            None => return,
        };
        if builder.add_share(&self.registry, &share).is_err() || !builder.complete() {
            return;
        }
        let vc_qc = match builder.assemble() {
            Ok(qc) => qc,
            Err(_) => return,
        };
        self.become_leader(vc_qc, ctx);
    }

    // ------------------------------------------------------------------
    // Leader-elect (§4.2.4)
    // ------------------------------------------------------------------

    /// The candidate won: prepare and broadcast the new `vcBlock`, then wait
    /// for `2f + 1` adoption acknowledgements.
    pub(crate) fn become_leader(&mut self, vc_qc: QuorumCertificate, ctx: &mut Context<Message>) {
        let campaign = match self.campaign.clone() {
            Some(c) => c,
            None => return,
        };
        self.stats.elections_won += 1;
        let block = self.store.latest_vc_block().successor(
            campaign.new_view,
            self.id,
            campaign.rp,
            campaign.ci,
            campaign.conf_qc.clone(),
            Some(vc_qc),
        );
        let digest = vc_block_digest(&block);
        let mut builder = QcBuilder::new(
            QcKind::ViewChange,
            campaign.new_view,
            SeqNum(1),
            digest,
            self.config.quorum(),
        );
        if let Some(share) = sign_share(
            &self.registry,
            self.id,
            QcKind::ViewChange,
            campaign.new_view,
            SeqNum(1),
            &digest,
        ) {
            let _ = builder.add_share(&self.registry, &share);
        }
        let sig = self.sign(digest.as_ref());
        ctx.broadcast(
            self.other_servers(),
            Message::NewVcBlock {
                block: block.clone(),
                sig,
            },
        );
        self.pending_vc_block = Some((block, builder));
    }

    /// Handles the elected leader's `vcBlock`: validate, adopt, acknowledge.
    pub(crate) fn handle_new_vc_block(
        &mut self,
        from: Actor,
        block: VcBlock,
        sig: [u8; 32],
        ctx: &mut Context<Message>,
    ) {
        if block.v <= self.store.current_view() {
            return;
        }
        if from != Actor::Server(block.leader_id) {
            return;
        }
        self.charge_verify_cost(ctx);
        let digest = vc_block_digest(&block);
        if !self.registry.verify(from, digest.as_ref(), &sig) {
            return;
        }
        // Leadership legitimacy: a vc_QC of 2f+1 election votes.
        let vc_qc = match &block.vc_qc {
            Some(qc) => qc,
            None => return,
        };
        let quorum = self.config.quorum();
        if vc_qc.kind != QcKind::ViewChange
            || vc_qc.view != block.v
            || !self.verify_qc_cached(vc_qc, quorum, ctx)
        {
            return;
        }
        // Reputation fragment: only the elected leader's rp/ci may change
        // relative to our current vcBlock (checked when the views are
        // adjacent; larger gaps are reconciled through sync).
        if block.v.0 == self.store.current_view().0 + 1
            && !self
                .store
                .latest_vc_block()
                .reputation_delta_only_for(&block, block.leader_id)
        {
            return;
        }
        // Adopt.
        let leader = block.leader_id;
        let view = block.v;
        if !self.store.insert_vc_block(block) {
            return;
        }
        if let Some(share) = sign_share(
            &self.registry,
            self.id,
            QcKind::ViewChange,
            view,
            SeqNum(1),
            &digest,
        ) {
            ctx.send(
                from,
                Message::VcYes {
                    view,
                    digest,
                    share,
                },
            );
        }
        self.note_view_installed(ctx, leader);
        self.maybe_request_refresh(ctx);
    }

    /// Handles an adoption acknowledgement; `2f + 1` of them complete the view
    /// change and the leader resumes replication in the new view.
    pub(crate) fn handle_vc_yes(
        &mut self,
        view: View,
        digest: Digest,
        share: PartialSig,
        ctx: &mut Context<Message>,
    ) {
        self.charge_verify_cost(ctx);
        let (block, builder) = match self.pending_vc_block.as_mut() {
            Some((b, q)) if b.v == view && vc_block_digest(b) == digest => (b.clone(), q),
            _ => return,
        };
        if builder.add_share(&self.registry, &share).is_err() || !builder.complete() {
            return;
        }
        // Consensus for the new view is reached: install and lead.
        self.pending_vc_block = None;
        if !self.store.insert_vc_block(block) {
            return;
        }
        self.note_view_installed(ctx, self.id);
        self.maybe_request_refresh(ctx);
    }

    // ------------------------------------------------------------------
    // Election timeouts, policy rotations, attacks
    // ------------------------------------------------------------------

    /// Candidate election timeout: split votes or a lost election. Per the
    /// paper, the candidate transitions back to redeemer with `V' + 1`.
    pub(crate) fn on_election_timer(&mut self, id: TimerId, ctx: &mut Context<Message>) {
        if self.election_timer != Some(id) {
            return;
        }
        self.election_timer = None;
        if self.role != ServerRole::Candidate {
            return;
        }
        let campaign = match self.campaign.take() {
            Some(c) => c,
            None => return,
        };
        self.stats.election_timeouts += 1;
        self.role = ServerRole::Follower;
        let retry_view = campaign.new_view.next();
        self.start_campaign(retry_view, campaign.conf_qc, ctx);
    }

    /// Policy rotation timer: if the current view has run its course under a
    /// timing policy, schedule a (jittered) campaign.
    pub(crate) fn on_policy_timer(&mut self, ctx: &mut Context<Message>) {
        let interval = match self.pacemaker.rotation_interval() {
            Some(i) => i,
            None => return,
        };
        if !self.rotation_due(ctx.now()) {
            return; // A newer view was installed; its own timer is armed.
        }
        // Re-arm so a failed rotation is retried.
        ctx.set_timer(interval, timer_tags::POLICY);
        // Quiesce replication in the outgoing view so candidates campaign
        // against a stable log (C3 would otherwise race in-flight commits).
        self.rotation_pending = true;
        if self.policy_rotation_started {
            return;
        }
        self.policy_rotation_started = true;
        if self.role == ServerRole::Leader && !self.behavior.attacks_view_changes() {
            return; // The incumbent does not campaign for its own succession.
        }
        if self.behavior.attacks_view_changes() {
            // F4 attackers race: campaign immediately with no back-off.
            let next = self.store.current_view().next();
            self.start_campaign(next, None, ctx);
            return;
        }
        let jitter = ctx
            .rng()
            .uniform(0.0, self.pacemaker.timeouts().randomization_ms.max(1.0));
        ctx.set_timer(
            prestige_sim::SimDuration::from_ms(jitter),
            timer_tags::POLICY_CAMPAIGN,
        );
    }

    /// Jittered policy campaign: start the campaign unless someone else
    /// already rotated the view.
    pub(crate) fn on_policy_campaign_timer(&mut self, ctx: &mut Context<Message>) {
        if !self.rotation_due(ctx.now()) {
            return;
        }
        if self.role == ServerRole::Leader {
            return;
        }
        let next = self.store.current_view().next();
        self.start_campaign(next, None, ctx);
    }

    /// Periodic attack trigger for F4 behaviours: campaign whenever not the
    /// leader (strategy permitting).
    pub(crate) fn on_attack_timer(&mut self, ctx: &mut Context<Message>) {
        if !self.behavior.attacks_view_changes() {
            return;
        }
        // Re-arm.
        let period = prestige_sim::SimDuration::from_ms(self.pacemaker.timeouts().base_timeout_ms);
        ctx.set_timer(period, timer_tags::ATTACK);
        if self.role == ServerRole::Leader {
            return;
        }
        if self.rotation_due(ctx.now()) {
            let next = self.store.current_view().next();
            self.start_campaign(next, None, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_crypto::KeyRegistry;
    use prestige_sim::{Effects, Emission, Process, SimRng};
    use prestige_types::ClusterConfig;

    fn server(n: u32, id: u32) -> PrestigeServer {
        let config = ClusterConfig::new(n);
        let registry = KeyRegistry::new(5, n, 2);
        PrestigeServer::new(ServerId(id), config, registry, 0)
    }

    #[test]
    fn digests_are_deterministic_and_distinct() {
        let d1 = PrestigeServer::confvc_digest(View(3));
        let d2 = PrestigeServer::confvc_digest(View(3));
        let d3 = PrestigeServer::confvc_digest(View(4));
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);

        let c1 = PrestigeServer::campaign_digest(ServerId(1), View(2), 2, 7, &Digest::ZERO);
        let c2 = PrestigeServer::campaign_digest(ServerId(2), View(2), 2, 7, &Digest::ZERO);
        assert_ne!(c1, c2);
    }

    #[test]
    fn calc_rp_for_initial_campaign_matches_engine() {
        let s = server(4, 1);
        let outcome = s.calc_rp_for(ServerId(1), View(2));
        // From genesis: rp 1 → 2 with no possible compensation (ti = 0).
        assert_eq!(outcome.new_rp, 2);
        assert_eq!(outcome.new_ci, 1);
        assert!(!outcome.compensated);
    }

    #[test]
    fn voters_and_candidates_agree_on_rp() {
        // Criterion C4 requires that any server recomputes the same rp/ci for
        // a given candidate from the same stored state.
        let s2 = server(4, 1);
        let s3 = server(4, 2);
        let a = s2.calc_rp_for(ServerId(3), View(2));
        let b = s3.calc_rp_for(ServerId(3), View(2));
        assert_eq!(a.new_rp, b.new_rp);
        assert_eq!(a.new_ci, b.new_ci);
    }

    /// Builds a fully valid V1→V2 campaign message for `candidate` (genesis
    /// state, conf_QC-justified), with an explicit ordered-tip claim.
    fn genesis_camp(
        registry: &KeyRegistry,
        voter: &PrestigeServer,
        candidate: ServerId,
        latest_ord_seq: SeqNum,
    ) -> Message {
        let view = View(1);
        let new_view = View(2);
        // C4: from genesis, the engine computes rp 2 / ci 1 for any campaign
        // V1 → V2 (pinned by `calc_rp_for_initial_campaign_matches_engine`).
        let outcome = voter.calc_rp_for(candidate, new_view);
        // C2: a Confirm QC at threshold f+1 over the ConfVC digest.
        let digest = PrestigeServer::confvc_digest(view);
        let confirm_quorum = voter.config.replicas.confirm_quorum();
        let mut builder = QcBuilder::new(QcKind::Confirm, view, SeqNum(0), digest, confirm_quorum);
        for s in 0..confirm_quorum {
            let share = sign_share(
                registry,
                ServerId(s),
                QcKind::Confirm,
                view,
                SeqNum(0),
                &digest,
            )
            .unwrap();
            builder.add_share(registry, &share).unwrap();
        }
        let conf_qc = builder.assemble().unwrap();
        // C5: solve the (modeled) puzzle over the claimed latest tx digest.
        let tx_digest = voter.store.latest_tx_digest();
        let puzzle = PowPuzzle::new(tx_digest, outcome.new_rp);
        let mut rng = SimRng::new(11);
        let (solution, _) = voter.pow_solver.solve(&puzzle, rng.rng());
        let campaign_digest = PrestigeServer::campaign_digest(
            candidate,
            new_view,
            outcome.new_rp,
            solution.nonce,
            &solution.hash_result,
        );
        let sig = registry
            .key_of(Actor::Server(candidate))
            .unwrap()
            .sign(campaign_digest.as_ref());
        Message::Camp {
            conf_qc: Some(conf_qc),
            view,
            new_view,
            rp: outcome.new_rp,
            ci: outcome.new_ci,
            nonce: solution.nonce,
            hash_result: solution.hash_result,
            latest_seq: SeqNum(0),
            latest_ord_seq,
            latest_tx_digest: tx_digest,
            sig,
        }
    }

    fn deliver(voter: &mut PrestigeServer, message: Message) -> Effects<Message> {
        let mut effects = Effects::new();
        let mut rng = SimRng::new(3);
        let mut next_timer_id = 500;
        let me = Actor::Server(voter.id());
        let mut ctx = Context::new(
            prestige_sim::SimTime::from_ms(1.0),
            me,
            &mut rng,
            &mut next_timer_id,
            &mut effects,
        );
        voter.on_message(Actor::Server(ServerId(3)), message, &mut ctx);
        effects
    }

    #[test]
    fn vote_refused_when_candidate_ordered_state_trails_signed_commit_tip() {
        // Committed-instance preservation (C3, ordered half): a voter that
        // has commit-signed instance n must refuse any candidate whose
        // ordered state cannot re-propose n — otherwise an elected stale
        // leader would overwrite a possibly-committed instance and fork the
        // chain against whoever assembled the commit QC.
        let registry = KeyRegistry::new(5, 4, 2);
        let config = ClusterConfig::new(4);

        // Sanity: the same campaign IS accepted by a voter with no signed
        // commit shares outstanding.
        let mut fresh_voter = PrestigeServer::new(ServerId(1), config.clone(), registry.clone(), 0);
        let camp = genesis_camp(&registry, &fresh_voter, ServerId(3), SeqNum(0));
        let effects = deliver(&mut fresh_voter, camp.clone());
        assert!(
            effects
                .emissions
                .iter()
                .any(|e| matches!(e, Emission::Send(_, Message::VoteCP { .. }))),
            "a valid campaign earns the vote of an unencumbered voter"
        );

        // The voter has commit-signed instance 3; the candidate claims an
        // ordered tip of 0 — refuse.
        let mut voter = PrestigeServer::new(ServerId(1), config.clone(), registry.clone(), 0);
        voter.signed_commit_tip = 3;
        let effects = deliver(&mut voter, camp);
        assert!(
            effects
                .emissions
                .iter()
                .all(|e| !matches!(e, Emission::Send(_, Message::VoteCP { .. }))),
            "the vote must be refused: the candidate could not re-propose \
             the possibly-committed instance 3"
        );

        // A candidate whose ordered claim covers the signed tip is accepted.
        let mut covered_voter = PrestigeServer::new(ServerId(1), config, registry.clone(), 0);
        covered_voter.signed_commit_tip = 3;
        let camp = genesis_camp(&registry, &covered_voter, ServerId(3), SeqNum(3));
        let effects = deliver(&mut covered_voter, camp);
        assert!(
            effects
                .emissions
                .iter()
                .any(|e| matches!(e, Emission::Send(_, Message::VoteCP { .. }))),
            "a candidate holding ordered state through the signed tip wins \
             the vote"
        );
    }
}
