//! End-to-end cluster tests: PrestigeBFT servers and clients running on the
//! deterministic simulator.

use prestige_core::{
    AttackStrategy, ByzantineBehavior, ClientConfig, PrestigeClient, PrestigeServer, ServerRole,
};
use prestige_crypto::KeyRegistry;
use prestige_sim::{NetworkConfig, SimTime, Simulation};
use prestige_types::{
    Actor, ClientId, ClusterConfig, Message, ServerId, TimeoutConfig, View, ViewChangePolicy,
};

/// Builds a cluster of `n` servers (with the given per-server behaviours) and
/// `clients` clients, each keeping `concurrency` requests in flight.
fn build_cluster(
    seed: u64,
    config: &ClusterConfig,
    behaviors: &[ByzantineBehavior],
    clients: u64,
    concurrency: usize,
) -> Simulation<Message> {
    let n = config.n();
    let registry = KeyRegistry::new(seed, n, clients);
    let mut sim = Simulation::new(seed, NetworkConfig::lan());
    for i in 0..n {
        let behavior = behaviors.get(i as usize).copied().unwrap_or_default();
        let server = PrestigeServer::with_behavior(
            ServerId(i),
            config.clone(),
            registry.clone(),
            seed,
            behavior,
        );
        sim.add_node(Actor::Server(ServerId(i)), Box::new(server));
    }
    for c in 0..clients {
        let client_config = ClientConfig::new(
            ClientId(c),
            config.replicas.clone(),
            config.payload_size,
            concurrency,
        );
        let client = PrestigeClient::new(client_config, &registry);
        sim.add_node(Actor::Client(ClientId(c)), Box::new(client));
    }
    sim
}

fn committed_tx(sim: &Simulation<Message>, server: u32) -> u64 {
    sim.node_as::<PrestigeServer>(Actor::Server(ServerId(server)))
        .unwrap()
        .stats()
        .committed_tx
}

fn current_view(sim: &Simulation<Message>, server: u32) -> View {
    sim.node_as::<PrestigeServer>(Actor::Server(ServerId(server)))
        .unwrap()
        .current_view()
}

#[test]
fn normal_operation_commits_transactions() {
    let config = ClusterConfig::new(4).with_batch_size(50);
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    let mut sim = build_cluster(1, &config, &behaviors, 2, 100);
    sim.run_until(SimTime::from_secs(5.0));

    // Every correct server commits a healthy number of transactions.
    for s in 0..4 {
        assert!(
            committed_tx(&sim, s) > 1000,
            "server {s} committed only {}",
            committed_tx(&sim, s)
        );
    }
    // Clients observe commits with f+1 confirmations.
    let client = sim
        .node_as::<PrestigeClient>(Actor::Client(ClientId(0)))
        .unwrap();
    assert!(client.stats().committed_tx > 500);
    assert!(client.stats().mean_latency_ms() > 0.0);
    // No view change was needed under a correct leader.
    assert_eq!(current_view(&sim, 0), View(1));
    assert_eq!(current_view(&sim, 3), View(1));
}

#[test]
fn replicas_commit_identical_logs() {
    let config = ClusterConfig::new(4).with_batch_size(20);
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    let mut sim = build_cluster(7, &config, &behaviors, 2, 40);
    sim.run_until(SimTime::from_secs(3.0));

    let reference = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(0)))
        .unwrap();
    let ref_seq = reference.store().latest_seq();
    assert!(ref_seq.0 > 10);
    for s in 1..4u32 {
        let server = sim
            .node_as::<PrestigeServer>(Actor::Server(ServerId(s)))
            .unwrap();
        let common = ref_seq.min(server.store().latest_seq());
        // Safety: every commonly committed sequence number holds the same block.
        for n in 1..=common.0 {
            let a = reference.store().tx_block(n.into()).unwrap();
            let b = server.store().tx_block(n.into()).unwrap();
            assert_eq!(a.header.digest, b.header.digest, "divergence at T{n}");
        }
        // Liveness: followers are not far behind the leader.
        assert!(server.store().latest_seq().0 + 20 >= ref_seq.0);
    }
}

#[test]
fn leader_crash_triggers_active_view_change_and_recovers() {
    let mut config = ClusterConfig::new(4).with_batch_size(50);
    config.timeouts = TimeoutConfig {
        base_timeout_ms: 300.0,
        randomization_ms: 300.0,
        client_timeout_ms: 400.0,
        complaint_grace_ms: 100.0,
    };
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    let mut sim = build_cluster(3, &config, &behaviors, 2, 50);

    // Let the initial leader make progress, then crash it.
    sim.run_until(SimTime::from_secs(2.0));
    let committed_before = committed_tx(&sim, 1);
    assert!(committed_before > 100);
    sim.crash(Actor::Server(ServerId(0)));
    sim.run_until(SimTime::from_secs(10.0));

    // A new view was installed on the surviving servers, led by a live server.
    for s in 1..4u32 {
        assert!(
            current_view(&sim, s) > View(1),
            "server {s} never left view 1"
        );
    }
    let new_leader = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(1)))
        .unwrap()
        .current_leader();
    assert_ne!(new_leader, ServerId(0), "crashed server must not lead");

    // Replication resumed: the survivors committed more transactions.
    let committed_after = committed_tx(&sim, 1);
    assert!(
        committed_after > committed_before + 100,
        "throughput did not recover: {committed_before} -> {committed_after}"
    );
}

#[test]
fn quiet_faulty_follower_does_not_disturb_progress() {
    let config = ClusterConfig::new(4).with_batch_size(50);
    let behaviors = vec![
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::Quiet,
    ];
    let mut sim = build_cluster(11, &config, &behaviors, 2, 100);
    sim.run_until(SimTime::from_secs(5.0));
    // The quorum of 3 correct servers keeps committing.
    assert!(committed_tx(&sim, 0) > 1000);
    assert_eq!(current_view(&sim, 0), View(1));
}

#[test]
fn equivocating_follower_does_not_block_commits() {
    let config = ClusterConfig::new(4).with_batch_size(50);
    let behaviors = vec![
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::Equivocate,
        ByzantineBehavior::Correct,
    ];
    let mut sim = build_cluster(13, &config, &behaviors, 2, 100);
    sim.run_until(SimTime::from_secs(5.0));
    assert!(committed_tx(&sim, 0) > 1000);
}

#[test]
fn timing_policy_rotates_leadership() {
    let mut config =
        ClusterConfig::new(4)
            .with_batch_size(50)
            .with_policy(ViewChangePolicy::Timing {
                interval_ms: 2000.0,
            });
    config.timeouts = TimeoutConfig {
        base_timeout_ms: 300.0,
        randomization_ms: 300.0,
        client_timeout_ms: 400.0,
        complaint_grace_ms: 100.0,
    };
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    let mut sim = build_cluster(17, &config, &behaviors, 2, 50);
    sim.run_until(SimTime::from_secs(12.0));

    // Several policy-driven rotations happened and replication still works.
    let views: Vec<View> = (0..4).map(|s| current_view(&sim, s)).collect();
    assert!(
        views.iter().all(|v| *v >= View(3)),
        "expected multiple rotations, views: {views:?}"
    );
    assert!(committed_tx(&sim, 0) > 500);
}

#[test]
fn repeated_vc_attacker_is_penalized_and_progress_resumes() {
    let mut config =
        ClusterConfig::new(4)
            .with_batch_size(50)
            .with_policy(ViewChangePolicy::Timing {
                interval_ms: 3000.0,
            });
    config.timeouts = TimeoutConfig {
        base_timeout_ms: 300.0,
        randomization_ms: 300.0,
        client_timeout_ms: 400.0,
        complaint_grace_ms: 100.0,
    };
    let behaviors = vec![
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::RepeatedVcQuiet(AttackStrategy::Always),
    ];
    let mut sim = build_cluster(19, &config, &behaviors, 2, 50);

    // First half: the attacker contests every rotation and may win a fair
    // share of early reigns while its penalty is still cheap to pay.
    sim.run_until(SimTime::from_secs(30.0));
    let wins_first_half = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(3)))
        .unwrap()
        .stats()
        .elections_won;
    let committed_first_half = committed_tx(&sim, 0);

    // Second half: the accumulated penalty has priced it out — this is the
    // paper's suppression claim (Figure 13), which is about the *trend*, not
    // about never winning an early race.
    sim.run_until(SimTime::from_secs(60.0));

    let s1 = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(0)))
        .unwrap();
    let attacker_rp = s1.store().current_rp(ServerId(3));
    assert!(
        attacker_rp >= 2,
        "attacker was never penalized (rp = {attacker_rp})"
    );
    assert_ne!(
        s1.current_leader(),
        ServerId(3),
        "attacker must not retain leadership"
    );
    let total_views = s1.current_view().0;
    let attacker = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(3)))
        .unwrap();
    let attacker_wins = attacker.stats().elections_won;
    assert!(total_views >= 4, "expected several view changes");
    assert!(
        attacker_wins * 2 <= total_views,
        "attacker won {attacker_wins} of {total_views} views — not suppressed"
    );
    let wins_second_half = attacker_wins - wins_first_half;
    assert!(
        wins_second_half <= 2,
        "suppression must strengthen over time: {wins_first_half} first-half \
         wins, then {wins_second_half} more"
    );
    // The attacker keeps paying for its campaigns, and the price climbs: its
    // latest campaigns run at a visibly higher penalty than its first (the
    // exponential-cost story of Figure 12). Cumulative puzzle-time
    // comparisons against correct servers are a coin flip at this horizon —
    // under a timing policy every rotation winner's penalty climbs too, and
    // one unlucky geometric draw at rp 4 dominates any total.
    let campaign_rps: Vec<i64> = attacker
        .stats()
        .campaign_log
        .iter()
        .map(|(_, rp, _)| *rp)
        .collect();
    assert!(
        campaign_rps.last().copied().unwrap_or(0) >= 3,
        "the attacker's campaign penalty must have climbed: {campaign_rps:?}"
    );
    assert!(attacker.stats().pow_ms_total > 0.0);
    // The cluster kept committing despite the attack — including in the
    // second half, under the suppressed attacker.
    assert!(committed_tx(&sim, 0) > committed_first_half + 10_000);
}

#[test]
fn same_seed_reproduces_identical_runs() {
    let config = ClusterConfig::new(4).with_batch_size(30);
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    let mut a = build_cluster(23, &config, &behaviors, 2, 50);
    let mut b = build_cluster(23, &config, &behaviors, 2, 50);
    a.run_until(SimTime::from_secs(2.0));
    b.run_until(SimTime::from_secs(2.0));
    assert_eq!(a.stats(), b.stats());
    assert_eq!(committed_tx(&a, 2), committed_tx(&b, 2));
}

#[test]
fn verify_worker_count_does_not_perturb_simulated_runs() {
    // `verify_workers` is a real-runtime knob: the simulator always verifies
    // inline (same-thread), so configuring 0 or N workers must produce
    // bit-identical runs — network stats, commit counts, and block chains.
    let base = ClusterConfig::new(4).with_batch_size(30);
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    let mut a = build_cluster(23, &base.clone().with_verify_workers(0), &behaviors, 2, 50);
    let mut b = build_cluster(23, &base.with_verify_workers(4), &behaviors, 2, 50);
    a.run_until(SimTime::from_secs(2.0));
    b.run_until(SimTime::from_secs(2.0));
    assert_eq!(a.stats(), b.stats(), "network traces must be identical");
    for s in 0..4u32 {
        let sa = sim_server(&a, s);
        let sb = sim_server(&b, s);
        assert_eq!(sa.stats(), sb.stats(), "server {s} stats must be identical");
        assert_eq!(sa.store().latest_seq(), sb.store().latest_seq());
        let latest = sa.store().latest_seq().0;
        for n in 1..=latest {
            assert_eq!(
                sa.store().tx_block(n.into()).unwrap().header.digest,
                sb.store().tx_block(n.into()).unwrap().header.digest,
                "server {s} diverged at T{n}"
            );
        }
    }
}

#[test]
fn pipeline_depths_preserve_replica_agreement() {
    // Pipelining changes batch boundaries and scheduling, never safety: at
    // every depth (stop-and-wait through a deep window) the cluster makes
    // healthy progress, every replica holds the same chain on the common
    // prefix, and the log is gap-free with intact chain pointers.
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    for depth in [1usize, 4, 8] {
        let config = ClusterConfig::new(4)
            .with_batch_size(20)
            .with_pipeline_depth(depth);
        let mut sim = build_cluster(7, &config, &behaviors, 2, 40);
        sim.run_until(SimTime::from_secs(3.0));

        let reference = sim_server(&sim, 0);
        let ref_seq = reference.store().latest_seq();
        assert!(ref_seq.0 > 10, "depth {depth}: cluster must progress");
        // Gap-free chain with intact prev pointers on the reference replica.
        let mut prev = None;
        for n in 1..=ref_seq.0 {
            let block = reference
                .store()
                .tx_block(n.into())
                .unwrap_or_else(|| panic!("depth {depth}: gap at T{n}"));
            if let Some(prev) = prev {
                assert_eq!(
                    block.header.prev_digest, prev,
                    "depth {depth}: chain broken at T{n}"
                );
            }
            prev = Some(block.header.digest);
        }
        // Every replica agrees on the common prefix.
        for s in 1..4u32 {
            let server = sim_server(&sim, s);
            let common = ref_seq.min(server.store().latest_seq());
            for n in 1..=common.0 {
                assert_eq!(
                    reference.store().tx_block(n.into()).unwrap().header.digest,
                    server.store().tx_block(n.into()).unwrap().header.digest,
                    "depth {depth}: server {s} diverged at T{n}"
                );
            }
        }
    }
}

fn sim_server(sim: &Simulation<Message>, id: u32) -> &PrestigeServer {
    sim.node_as::<PrestigeServer>(Actor::Server(ServerId(id)))
        .unwrap()
}

#[test]
fn servers_start_in_expected_roles() {
    let config = ClusterConfig::new(4);
    let behaviors = vec![ByzantineBehavior::Correct; 4];
    let sim = build_cluster(29, &config, &behaviors, 1, 10);
    let s1 = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(0)))
        .unwrap();
    let s2 = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(1)))
        .unwrap();
    assert_eq!(s1.role(), ServerRole::Leader);
    assert_eq!(s2.role(), ServerRole::Follower);
}
