//! Deterministic randomness for the simulator.
//!
//! Every run of an experiment is fully determined by a single `u64` seed: the
//! simulation RNG, per-node derived seeds, latency jitter, timeout
//! randomization, and workload generation all flow from it. That determinism
//! is what makes figures regenerable and failures debuggable.
//!
//! Besides uniform sampling (re-exported from `rand`), this module provides a
//! normal distribution via the Box–Muller transform — needed for the paper's
//! netem emulation of `d = 10 ± 5 ms` delays "at normal distribution" — so no
//! extra dependency on `rand_distr` is required.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulator's random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG, e.g. one per node, so adding a node
    /// does not perturb the random streams of the others.
    pub fn derive(&self, salt: u64) -> SimRng {
        // Mix the salt with fresh output of a clone so children differ even
        // for equal salts of different parents.
        let mut probe = self.inner.clone();
        let base = probe.next_u64();
        SimRng::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer sample in `[lo, hi)`. Returns `lo` when empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen_bool(p)
    }

    /// Normal sample with the given mean and standard deviation (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Access to the underlying `rand::Rng` for callers that need other
    /// distributions (e.g. the PoW solver).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..10).map(|_| a.uniform_u64(0, 1_000_000)).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.uniform_u64(0, 1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_children_are_independent_and_deterministic() {
        let parent = SimRng::new(42);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(2);
        let mut c1_again = parent.derive(1);
        assert_eq!(c1.uniform_u64(0, 1 << 30), c1_again.uniform_u64(0, 1 << 30));
        let s1: Vec<u64> = (0..5).map(|_| c1.uniform_u64(0, 1 << 30)).collect();
        let s2: Vec<u64> = (0..5).map(|_| c2.uniform_u64(0, 1 << 30)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn normal_distribution_moments() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 5.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean was {mean}");
        assert!((var.sqrt() - 5.0).abs() < 0.2, "std was {}", var.sqrt());
    }

    #[test]
    fn degenerate_parameters() {
        let mut rng = SimRng::new(4);
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform_u64(9, 3), 9);
        assert_eq!(rng.normal(3.0, 0.0), 3.0);
        assert_eq!(rng.exponential(0.0), 0.0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean was {mean}");
    }
}
