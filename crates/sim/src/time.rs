//! Virtual time: instants and durations with nanosecond resolution.
//!
//! All experiment parameters in the paper are given in milliseconds or
//! seconds; the conversion helpers keep the protocol code readable
//! (`SimDuration::from_ms(800.0)`) while the simulator operates on integer
//! nanoseconds so event ordering is exact and deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// This instant expressed in milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Constructs an instant from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1_000_000.0) as u64)
    }

    /// Constructs an instant from seconds.
    pub fn from_secs(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1_000_000_000.0) as u64)
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000_000.0) as u64)
    }

    /// Constructs a duration from seconds.
    pub fn from_secs(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1_000_000_000.0) as u64)
    }

    /// Constructs a duration from microseconds.
    pub fn from_us(us: f64) -> Self {
        SimDuration((us.max(0.0) * 1_000.0) as u64)
    }

    /// This duration in milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating multiplication by a non-negative factor.
    pub fn mul_f64(&self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(1.5);
        assert!((t.as_ms() - 1.5).abs() < 1e-9);
        let d = SimDuration::from_secs(2.0);
        assert!((d.as_secs() - 2.0).abs() < 1e-9);
        assert!((SimDuration::from_us(250.0).as_ms() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10.0) + SimDuration::from_ms(5.0);
        assert!((t.as_ms() - 15.0).abs() < 1e-9);
        let d = SimTime::from_ms(15.0) - SimTime::from_ms(10.0);
        assert!((d.as_ms() - 5.0).abs() < 1e-9);
        // Subtraction saturates rather than wrapping.
        let d = SimTime::from_ms(1.0) - SimTime::from_ms(5.0);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(SimDuration::from_ms(-3.0), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs(-1.0), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(2.0));
        assert!(SimDuration::from_ms(1.0) < SimDuration::from_ms(1.001));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_ms(10.0).mul_f64(2.5);
        assert!((d.as_ms() - 25.0).abs() < 1e-9);
        assert_eq!(SimDuration::from_ms(10.0).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn since_and_display() {
        let a = SimTime::from_ms(3.0);
        let b = SimTime::from_ms(10.0);
        assert!((b.since(a).as_ms() - 7.0).abs() < 1e-9);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(format!("{}", SimTime::from_ms(1.0)), "1.000ms");
    }
}
