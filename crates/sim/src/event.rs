//! The event queue: time-ordered, deterministic.
//!
//! Two event kinds drive a simulation: message deliveries and timer
//! expirations. Events scheduled for the same instant are processed in the
//! order they were scheduled (a strictly increasing tie-break sequence), so a
//! run is a pure function of the seed and the initial configuration.

use crate::time::SimTime;
use prestige_types::Actor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled timer (unique within a simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventPayload<M> {
    /// Deliver a message to `to`.
    Deliver {
        /// Sender of the message.
        from: Actor,
        /// The message payload.
        message: M,
    },
    /// Fire a timer previously set by the node.
    Timer {
        /// The timer's identifier.
        id: TimerId,
        /// The protocol-defined tag distinguishing timer kinds.
        tag: u64,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// The node the event is addressed to.
    pub target: Actor,
    /// The payload.
    pub payload: EventPayload<M>,
    /// Tie-break sequence number (assigned by the queue).
    pub seq: u64,
}

struct HeapEntry<M>(Event<M>);

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<M> Eq for HeapEntry<M> {}

impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // breaking ties by insertion order.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` for `target` at time `at`.
    pub fn push(&mut self, at: SimTime, target: Actor, payload: EventPayload<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event {
            at,
            target,
            payload,
            seq,
        }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|e| e.0)
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event that fails the predicate, keeping the
    /// survivors' original tie-break sequence numbers (so relative ordering —
    /// and therefore determinism — is unaffected). Used when an actor is
    /// replaced mid-run: events addressed to the dead incarnation must not
    /// fire into its successor.
    pub fn retain<F: FnMut(&Event<M>) -> bool>(&mut self, mut keep: F) {
        let entries: Vec<HeapEntry<M>> = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .filter(|e| keep(&e.0))
            .collect();
        self.heap = BinaryHeap::from(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::ServerId;

    fn actor(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            SimTime::from_ms(5.0),
            actor(0),
            EventPayload::Timer {
                id: TimerId(1),
                tag: 0,
            },
        );
        q.push(
            SimTime::from_ms(1.0),
            actor(1),
            EventPayload::Timer {
                id: TimerId(2),
                tag: 0,
            },
        );
        q.push(
            SimTime::from_ms(3.0),
            actor(2),
            EventPayload::Timer {
                id: TimerId(3),
                tag: 0,
            },
        );
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_ms())
            .collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10u32 {
            q.push(
                SimTime::from_ms(1.0),
                actor(i),
                EventPayload::Deliver {
                    from: actor(99),
                    message: i,
                },
            );
        }
        let targets: Vec<Actor> = std::iter::from_fn(|| q.pop()).map(|e| e.target).collect();
        let expected: Vec<Actor> = (0..10).map(actor).collect();
        assert_eq!(targets, expected);
    }

    #[test]
    fn retain_preserves_order_of_survivors() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..6u32 {
            q.push(
                SimTime::from_ms(1.0),
                actor(i % 2),
                EventPayload::Deliver {
                    from: actor(99),
                    message: i,
                },
            );
        }
        q.retain(|e| e.target != actor(1));
        let msgs: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Deliver { message, .. } => message,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(msgs, vec![0, 2, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(
            SimTime::from_ms(2.0),
            actor(0),
            EventPayload::Timer {
                id: TimerId(0),
                tag: 7,
            },
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2.0)));
    }
}
