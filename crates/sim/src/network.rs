//! The network model: latency distributions, bandwidth, loss, partitions.
//!
//! The paper's testbed is a cloud LAN with ~400 MB/s TCP bandwidth and < 2 ms
//! raw latency, optionally inflated by netem to `10 ± 5 ms` normally
//! distributed delays (§6). This module reproduces those knobs:
//!
//! * **latency** — per-message propagation delay sampled from a configurable
//!   distribution,
//! * **bandwidth** — per-sender serialization delay `size / bandwidth`; a
//!   sender's messages queue behind each other at its NIC, which is what
//!   produces the saturation elbows of Figure 6 under large batches,
//! * **loss** — independent per-message drop probability,
//! * **partitions** — directed link blocking between pairs of actors.

use crate::rng::SimRng;
use crate::time::SimDuration;
use prestige_types::Actor;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Propagation-latency distribution for a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always exactly `ms` milliseconds.
    Constant {
        /// The fixed one-way delay (ms).
        ms: f64,
    },
    /// Uniform in `[lo_ms, hi_ms)`.
    Uniform {
        /// Lower bound (ms).
        lo_ms: f64,
        /// Upper bound (ms).
        hi_ms: f64,
    },
    /// Normally distributed with the given mean and standard deviation,
    /// clamped at `min_ms` (netem-style `10 ± 5 ms`).
    Normal {
        /// Mean delay (ms).
        mean_ms: f64,
        /// Standard deviation (ms).
        std_ms: f64,
        /// Clamp floor (ms).
        min_ms: f64,
    },
}

impl LatencyModel {
    /// The paper's raw-LAN latency: just under 2 ms, uniformly jittered.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            lo_ms: 0.5,
            hi_ms: 2.0,
        }
    }

    /// The paper's netem emulation: `d = 10 ± 5 ms` normal distribution on top
    /// of the LAN latency (modelled as a single normal with the LAN midpoint
    /// folded into the mean).
    pub fn netem_d10() -> Self {
        LatencyModel::Normal {
            mean_ms: 11.0,
            std_ms: 5.0,
            min_ms: 0.5,
        }
    }

    /// Samples a one-way propagation delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let ms = match self {
            LatencyModel::Constant { ms } => *ms,
            LatencyModel::Uniform { lo_ms, hi_ms } => rng.uniform(*lo_ms, *hi_ms),
            LatencyModel::Normal {
                mean_ms,
                std_ms,
                min_ms,
            } => rng.normal(*mean_ms, *std_ms).max(*min_ms),
        };
        SimDuration::from_ms(ms.max(0.0))
    }

    /// The mean of the distribution (for planning and reporting).
    pub fn mean_ms(&self) -> f64 {
        match self {
            LatencyModel::Constant { ms } => *ms,
            LatencyModel::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            LatencyModel::Normal { mean_ms, .. } => *mean_ms,
        }
    }
}

/// Full network configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Propagation latency model.
    pub latency: LatencyModel,
    /// Per-sender NIC bandwidth in bytes per second; `f64::INFINITY` disables
    /// serialization delay.
    pub bandwidth_bytes_per_sec: f64,
    /// Independent probability that any given message is lost.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan()
    }
}

impl NetworkConfig {
    /// The paper's cloud LAN: ~400 MB/s, < 2 ms latency, no loss.
    pub fn lan() -> Self {
        NetworkConfig {
            latency: LatencyModel::lan(),
            bandwidth_bytes_per_sec: 400.0e6,
            drop_probability: 0.0,
        }
    }

    /// The paper's netem-delayed network (`d = 10 ± 5 ms`).
    pub fn delayed() -> Self {
        NetworkConfig {
            latency: LatencyModel::netem_d10(),
            bandwidth_bytes_per_sec: 400.0e6,
            drop_probability: 0.0,
        }
    }

    /// A lossy variant of a configuration (for fault-injection tests).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Serialization (transmission) delay of `size` bytes at the configured
    /// bandwidth.
    pub fn serialization_delay(&self, size: usize) -> SimDuration {
        if !self.bandwidth_bytes_per_sec.is_finite() || self.bandwidth_bytes_per_sec <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs(size as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Samples the propagation latency for one message.
    pub fn propagation_delay(&self, rng: &mut SimRng) -> SimDuration {
        self.latency.sample(rng)
    }

    /// Whether a given message should be dropped.
    pub fn should_drop(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.drop_probability)
    }
}

/// Directed link blocking (network partitions) and crashed-node tracking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkState {
    blocked: HashSet<(Actor, Actor)>,
    down: HashSet<Actor>,
}

impl LinkState {
    /// Creates a fully connected link state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks traffic from `a` to `b` (one direction).
    pub fn block(&mut self, a: Actor, b: Actor) {
        self.blocked.insert((a, b));
    }

    /// Blocks traffic in both directions between `a` and `b`.
    pub fn block_both(&mut self, a: Actor, b: Actor) {
        self.block(a, b);
        self.block(b, a);
    }

    /// Restores traffic from `a` to `b`.
    pub fn unblock(&mut self, a: Actor, b: Actor) {
        self.blocked.remove(&(a, b));
    }

    /// Restores traffic in both directions.
    pub fn unblock_both(&mut self, a: Actor, b: Actor) {
        self.unblock(a, b);
        self.unblock(b, a);
    }

    /// Removes every partition.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Marks an actor as crashed: it neither sends nor receives.
    pub fn crash(&mut self, a: Actor) {
        self.down.insert(a);
    }

    /// Brings a crashed actor back.
    pub fn recover(&mut self, a: Actor) {
        self.down.remove(&a);
    }

    /// Whether an actor is currently crashed.
    pub fn is_down(&self, a: Actor) -> bool {
        self.down.contains(&a)
    }

    /// Whether a message from `a` to `b` can currently be delivered.
    pub fn can_deliver(&self, a: Actor, b: Actor) -> bool {
        !self.is_down(a) && !self.is_down(b) && !self.blocked.contains(&(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::ServerId;

    fn s(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    #[test]
    fn constant_latency_is_exact() {
        let mut rng = SimRng::new(1);
        let m = LatencyModel::Constant { ms: 3.0 };
        assert!((m.sample(&mut rng).as_ms() - 3.0).abs() < 1e-9);
        assert_eq!(m.mean_ms(), 3.0);
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let mut rng = SimRng::new(2);
        let m = LatencyModel::Uniform {
            lo_ms: 1.0,
            hi_ms: 2.0,
        };
        for _ in 0..1000 {
            let d = m.sample(&mut rng).as_ms();
            assert!((1.0..2.0).contains(&d));
        }
    }

    #[test]
    fn normal_latency_clamps_at_floor() {
        let mut rng = SimRng::new(3);
        let m = LatencyModel::Normal {
            mean_ms: 1.0,
            std_ms: 10.0,
            min_ms: 0.5,
        };
        for _ in 0..1000 {
            assert!(m.sample(&mut rng).as_ms() >= 0.5);
        }
    }

    #[test]
    fn netem_profile_mean_close_to_ten() {
        let mut rng = SimRng::new(4);
        let m = LatencyModel::netem_d10();
        let n = 5000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng).as_ms()).sum::<f64>() / n as f64;
        assert!((mean - 11.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn serialization_delay_scales_with_size_and_bandwidth() {
        let net = NetworkConfig {
            latency: LatencyModel::Constant { ms: 0.0 },
            bandwidth_bytes_per_sec: 1000.0,
            drop_probability: 0.0,
        };
        assert!((net.serialization_delay(500).as_secs() - 0.5).abs() < 1e-9);
        let infinite = NetworkConfig {
            bandwidth_bytes_per_sec: f64::INFINITY,
            ..net
        };
        assert_eq!(infinite.serialization_delay(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn drop_probability_behaviour() {
        let mut rng = SimRng::new(5);
        let lossless = NetworkConfig::lan();
        assert!(!lossless.should_drop(&mut rng));
        let lossy = NetworkConfig::lan().with_loss(1.0);
        assert!(lossy.should_drop(&mut rng));
        let clamped = NetworkConfig::lan().with_loss(7.0);
        assert_eq!(clamped.drop_probability, 1.0);
    }

    #[test]
    fn link_state_partitions_and_crashes() {
        let mut links = LinkState::new();
        assert!(links.can_deliver(s(0), s(1)));
        links.block(s(0), s(1));
        assert!(!links.can_deliver(s(0), s(1)));
        assert!(links.can_deliver(s(1), s(0)), "blocking is directional");
        links.block_both(s(2), s(3));
        assert!(!links.can_deliver(s(3), s(2)));
        links.unblock_both(s(2), s(3));
        assert!(links.can_deliver(s(3), s(2)));
        links.crash(s(1));
        assert!(links.is_down(s(1)));
        assert!(!links.can_deliver(s(1), s(0)));
        assert!(!links.can_deliver(s(2), s(1)));
        links.recover(s(1));
        links.unblock(s(0), s(1));
        links.heal_all();
        assert!(links.can_deliver(s(0), s(1)));
    }
}
