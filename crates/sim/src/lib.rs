//! # prestige-sim
//!
//! A deterministic discrete-event cluster simulator. It stands in for the
//! paper's testbed of 4–100 cloud VMs connected by TCP (see DESIGN.md §1):
//!
//! * a virtual clock with nanosecond resolution ([`time`]),
//! * a deterministic event queue — same seed, same trace ([`event`], [`runtime`]),
//! * a network model with per-link latency distributions (constant, uniform,
//!   normal — reproducing the paper's netem `d = 10 ± 5 ms` emulation),
//!   per-sender bandwidth serialization, message loss, and partitions
//!   ([`network`]),
//! * a node abstraction: protocol implementations are event handlers reacting
//!   to message deliveries and timer expirations ([`process`]),
//! * per-node CPU cost accounting so that signature verification and batch
//!   hashing show up as processing delay, which is what creates the
//!   throughput/latency elbows of Figure 6 ([`runtime`]),
//! * execution statistics: message and byte counts per message kind
//!   ([`stats`]).
//!
//! Both PrestigeBFT (`prestige-core`) and the baselines
//! (`prestige-baselines`) run unchanged on this substrate, which is what makes
//! the evaluation comparison apples-to-apples.

#![warn(missing_docs)]

pub mod event;
pub mod network;
pub mod process;
pub mod rng;
pub mod runtime;
pub mod stats;
pub mod time;

pub use event::{Event, EventPayload, TimerId};
pub use network::{LatencyModel, LinkState, NetworkConfig};
pub use process::{Context, Effects, Emission, Process};
pub use rng::SimRng;
pub use runtime::Simulation;
pub use stats::NetStats;
pub use time::{SimDuration, SimTime};
