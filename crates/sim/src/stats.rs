//! Network and execution statistics collected by the runtime.
//!
//! The counters feed the experiment reports: per-message-kind counts show the
//! message-complexity difference between protocols, byte counts feed the
//! bandwidth discussion (e.g. quiet faulty servers freeing bandwidth in
//! Figure 9), and drop/blocked counts validate fault-injection scenarios.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated statistics for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages delivered, per message kind.
    pub delivered_by_kind: BTreeMap<String, u64>,
    /// Bytes delivered, per message kind.
    pub bytes_by_kind: BTreeMap<String, u64>,
    /// Total messages sent (including dropped/blocked).
    pub sent_total: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Messages suppressed by partitions or crashed endpoints.
    pub blocked: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Timer events discarded because they were cancelled.
    pub timers_cancelled: u64,
    /// Total events processed.
    pub events_processed: u64,
}

impl NetStats {
    /// Records a successful delivery of a message of `kind` and `size` bytes.
    pub fn record_delivery(&mut self, kind: &str, size: usize) {
        *self.delivered_by_kind.entry(kind.to_string()).or_insert(0) += 1;
        *self.bytes_by_kind.entry(kind.to_string()).or_insert(0) += size as u64;
    }

    /// Total messages delivered across all kinds.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_by_kind.values().sum()
    }

    /// Total bytes delivered across all kinds.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_by_kind.values().sum()
    }

    /// Delivered message count for one kind.
    pub fn delivered(&self, kind: &str) -> u64 {
        self.delivered_by_kind.get(kind).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = NetStats::default();
        s.record_delivery("Ord", 100);
        s.record_delivery("Ord", 150);
        s.record_delivery("Cmt", 50);
        assert_eq!(s.delivered("Ord"), 2);
        assert_eq!(s.delivered("Cmt"), 1);
        assert_eq!(s.delivered("VoteCP"), 0);
        assert_eq!(s.delivered_total(), 3);
        assert_eq!(s.bytes_total(), 300);
    }

    #[test]
    fn default_is_empty() {
        let s = NetStats::default();
        assert_eq!(s.delivered_total(), 0);
        assert_eq!(s.bytes_total(), 0);
        assert_eq!(s.sent_total, 0);
    }
}
