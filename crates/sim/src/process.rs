//! The node abstraction: protocol code as deterministic event handlers.
//!
//! A [`Process`] reacts to three things: simulation start, message delivery,
//! and timer expiration. All effects — sending messages, arming or cancelling
//! timers, charging CPU time — go through the [`Context`] handed to each
//! handler, which the runtime then turns into future events. Handlers never
//! block and never observe wall-clock time, so a run is a pure function of the
//! seed and configuration.

use crate::event::TimerId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use prestige_types::Actor;
use std::any::Any;

/// Buffered effects of one handler invocation.
///
/// This is the **driver contract**: any runtime — the deterministic simulator
/// in this crate or the real networking runtime in `prestige-net` — drives a
/// [`Process`] by constructing a [`Context`] over an `Effects` buffer,
/// invoking a handler, and then turning the buffered effects into reality
/// (simulated events or actual socket writes and OS timers). Protocol code
/// never sees which runtime it is on.
#[derive(Debug, Default)]
pub struct Effects<M> {
    /// Messages to transmit, in emission order. Broadcasts are kept as a
    /// single entry so the driving runtime can fan the payload out without
    /// cloning it per recipient (the real transport encodes it exactly once).
    pub emissions: Vec<Emission<M>>,
    /// Timers to arm: `(id, delay from now, protocol tag)`.
    pub timers: Vec<(TimerId, SimDuration, u64)>,
    /// Previously armed timers to cancel.
    pub cancels: Vec<TimerId>,
    /// CPU time consumed by the handler. The simulator turns this into
    /// processing delay; real runtimes may ignore it (real CPU time passes by
    /// itself) or export it as a metric.
    pub cpu: SimDuration,
}

/// One outbound transmission buffered by a handler.
#[derive(Debug)]
pub enum Emission<M> {
    /// A unicast message to one actor.
    Send(Actor, M),
    /// One payload addressed to many actors. The payload is stored once;
    /// runtimes decide how to fan it out (the simulator clones per delivery
    /// event, real transports serialize once and share the bytes).
    Broadcast(Vec<Actor>, M),
}

impl<M> Effects<M> {
    /// An empty effects buffer.
    pub fn new() -> Self {
        Effects {
            emissions: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            cpu: SimDuration::ZERO,
        }
    }

    /// Total number of individual messages buffered (a broadcast to `k`
    /// recipients counts as `k`).
    pub fn message_count(&self) -> usize {
        self.emissions
            .iter()
            .map(|e| match e {
                Emission::Send(..) => 1,
                Emission::Broadcast(tos, _) => tos.len(),
            })
            .sum()
    }
}

/// The handler-side view of the simulation: current time, identity, RNG, and
/// the ability to schedule effects.
pub struct Context<'a, M> {
    now: SimTime,
    me: Actor,
    rng: &'a mut SimRng,
    next_timer_id: &'a mut u64,
    outputs: &'a mut Effects<M>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a handler context for one invocation. `now` is the driving
    /// runtime's current time, `next_timer_id` its monotonically increasing
    /// timer-id allocator, and `outputs` the buffer the handler's effects
    /// accumulate into. Part of the public driver contract (see [`Effects`]).
    pub fn new(
        now: SimTime,
        me: Actor,
        rng: &'a mut SimRng,
        next_timer_id: &'a mut u64,
        outputs: &'a mut Effects<M>,
    ) -> Self {
        Context {
            now,
            me,
            rng,
            next_timer_id,
            outputs,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identity.
    pub fn me(&self) -> Actor {
        self.me
    }

    /// The node's deterministic RNG (derived from the simulation seed).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends a message to another actor (delivery time is decided by the
    /// network model).
    pub fn send(&mut self, to: Actor, message: M) {
        self.outputs.emissions.push(Emission::Send(to, message));
    }

    /// Sends one message to every actor in `recipients`. The payload is
    /// buffered once — not cloned per recipient — so runtimes with an
    /// encode-once transport broadcast it with a single serialization.
    pub fn broadcast<I>(&mut self, recipients: I, message: M)
    where
        M: Clone,
        I: IntoIterator<Item = Actor>,
    {
        let recipients: Vec<Actor> = recipients.into_iter().collect();
        if recipients.is_empty() {
            return;
        }
        self.outputs
            .emissions
            .push(Emission::Broadcast(recipients, message));
    }

    /// Arms a timer that fires after `delay`; `tag` is returned to the handler
    /// so protocols can distinguish timer kinds. Returns the timer's id,
    /// usable with [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.outputs.timers.push((id, delay, tag));
        id
    }

    /// Cancels a previously armed timer (firing of a cancelled timer is
    /// silently discarded).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.outputs.cancels.push(id);
    }

    /// Charges `duration` of CPU time to this node: subsequent deliveries to
    /// the node are pushed back accordingly, modeling processing saturation.
    pub fn charge_cpu(&mut self, duration: SimDuration) {
        self.outputs.cpu += duration;
    }

    /// Convenience: charge CPU specified in milliseconds.
    pub fn charge_cpu_ms(&mut self, ms: f64) {
        self.charge_cpu(SimDuration::from_ms(ms));
    }
}

/// A protocol node driven by the simulator.
///
/// Implementations must also expose themselves as `Any` so experiment
/// harnesses can downcast and inspect node state (committed blocks, metrics)
/// after — or during — a run.
pub trait Process<M>: Any {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, from: Actor, message: M, ctx: &mut Context<M>);

    /// Called when a timer armed by this node fires (and was not cancelled).
    fn on_timer(&mut self, id: TimerId, tag: u64, ctx: &mut Context<M>);

    /// Called when a background job the node offloaded to the driving runtime
    /// (e.g. a crypto verification handed to a `VerifyPool`) completes.
    /// `token` is the caller-chosen identifier the job was submitted under and
    /// `ok` its verdict. The deterministic simulator never delivers these —
    /// simulated nodes verify inline — so the default is a no-op.
    fn on_job_complete(&mut self, _token: u64, _ok: bool, _ctx: &mut Context<M>) {}

    /// Upcast for inspection by harnesses.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for inspection by harnesses.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::ServerId;

    struct Echo {
        received: Vec<u32>,
    }

    impl Process<u32> for Echo {
        fn on_message(&mut self, from: Actor, message: u32, ctx: &mut Context<u32>) {
            self.received.push(message);
            ctx.send(from, message + 1);
            ctx.charge_cpu_ms(0.5);
        }
        fn on_timer(&mut self, _id: TimerId, _tag: u64, _ctx: &mut Context<u32>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_buffers_effects() {
        let mut rng = SimRng::new(1);
        let mut next_id = 0;
        let mut outputs = Effects::new();
        let me = Actor::Server(ServerId(0));
        let mut ctx = Context::new(
            SimTime::from_ms(5.0),
            me,
            &mut rng,
            &mut next_id,
            &mut outputs,
        );

        assert_eq!(ctx.now(), SimTime::from_ms(5.0));
        assert_eq!(ctx.me(), me);
        ctx.send(Actor::Server(ServerId(1)), 7u32);
        ctx.broadcast((0..3).map(|i| Actor::Server(ServerId(i))), 9u32);
        let t = ctx.set_timer(SimDuration::from_ms(10.0), 42);
        ctx.cancel_timer(t);
        ctx.charge_cpu_ms(1.0);

        assert_eq!(outputs.emissions.len(), 2);
        assert_eq!(outputs.message_count(), 4);
        assert!(matches!(&outputs.emissions[1],
            Emission::Broadcast(tos, 9u32) if tos.len() == 3));
        assert_eq!(outputs.timers.len(), 1);
        assert_eq!(outputs.timers[0].2, 42);
        assert_eq!(outputs.cancels, vec![t]);
        assert!((outputs.cpu.as_ms() - 1.0).abs() < 1e-9);
        assert_eq!(next_id, 1);
    }

    #[test]
    fn process_as_any_downcasts() {
        let mut node = Echo { received: vec![] };
        let mut rng = SimRng::new(2);
        let mut next_id = 0;
        let mut outputs = Effects::new();
        let me = Actor::Server(ServerId(0));
        let mut ctx = Context::new(SimTime::ZERO, me, &mut rng, &mut next_id, &mut outputs);
        node.on_message(Actor::Server(ServerId(1)), 3, &mut ctx);

        let as_dyn: &dyn Process<u32> = &node;
        let echo = as_dyn.as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(echo.received, vec![3]);
        assert!(matches!(
            outputs.emissions.as_slice(),
            [Emission::Send(to, 4u32)] if *to == Actor::Server(ServerId(1))
        ));
    }
}
