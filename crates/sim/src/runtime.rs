//! The simulation runtime: event loop, CPU accounting, fault injection.
//!
//! The runtime owns the clock, the event queue, the nodes, the network model,
//! and the statistics. A run proceeds by repeatedly popping the earliest
//! event, handing it to the addressed node, and converting the node's buffered
//! effects (sends, timers, CPU charges) into future events.
//!
//! Determinism: all randomness flows from the constructor seed (one derived
//! stream per node plus one for the network), events at equal times fire in
//! scheduling order, and nodes are started in insertion order.

use crate::event::{EventPayload, EventQueue, TimerId};
use crate::network::{LinkState, NetworkConfig};
use crate::process::{Context, Effects, Emission, Process};
use crate::rng::SimRng;
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};
use prestige_types::{Actor, Wire};
use std::collections::{HashMap, HashSet};

/// A deterministic discrete-event simulation of a message-passing cluster.
pub struct Simulation<M: Wire + 'static> {
    now: SimTime,
    queue: EventQueue<M>,
    nodes: HashMap<Actor, Box<dyn Process<M>>>,
    node_order: Vec<Actor>,
    node_rngs: HashMap<Actor, SimRng>,
    net_rng: SimRng,
    seed: u64,
    network: NetworkConfig,
    links: LinkState,
    nic_free: HashMap<Actor, SimTime>,
    cpu_free: HashMap<Actor, SimTime>,
    cancelled: HashSet<TimerId>,
    next_timer_id: u64,
    stats: NetStats,
    started: bool,
}

impl<M: Wire + 'static> Simulation<M> {
    /// Creates a simulation with the given seed and network model.
    pub fn new(seed: u64, network: NetworkConfig) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: HashMap::new(),
            node_order: Vec::new(),
            node_rngs: HashMap::new(),
            net_rng: SimRng::new(seed ^ 0xBADC_0FFE_E0DD_F00D),
            seed,
            network,
            links: LinkState::new(),
            nic_free: HashMap::new(),
            cpu_free: HashMap::new(),
            cancelled: HashSet::new(),
            next_timer_id: 0,
            stats: NetStats::default(),
            started: false,
        }
    }

    /// Registers a node. Must be called before [`Simulation::start`].
    pub fn add_node(&mut self, actor: Actor, node: Box<dyn Process<M>>) {
        let salt = match actor {
            Actor::Server(s) => s.0 as u64,
            Actor::Client(c) => 0x1_0000_0000u64 + c.0,
        };
        self.node_rngs
            .insert(actor, SimRng::new(self.seed).derive(salt));
        self.nodes.insert(actor, node);
        self.node_order.push(actor);
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Replaces the network model (e.g. to inject extra delay mid-run).
    pub fn set_network(&mut self, network: NetworkConfig) {
        self.network = network;
    }

    /// The current network model.
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// Crashes an actor: it stops receiving and sending.
    pub fn crash(&mut self, actor: Actor) {
        self.links.crash(actor);
    }

    /// Recovers a crashed actor.
    pub fn recover(&mut self, actor: Actor) {
        self.links.recover(actor);
    }

    /// Whether an actor is currently crashed.
    pub fn is_down(&self, actor: Actor) -> bool {
        self.links.is_down(actor)
    }

    /// Blocks traffic in both directions between two actors.
    pub fn partition(&mut self, a: Actor, b: Actor) {
        self.links.block_both(a, b);
    }

    /// Restores traffic in both directions between two actors.
    pub fn heal(&mut self, a: Actor, b: Actor) {
        self.links.unblock_both(a, b);
    }

    /// Blocks traffic in one direction only: messages from `from` to `to`
    /// are lost while the reverse path keeps working. This is the asymmetric
    /// partition primitive (e.g. a leader that can hear replies but whose own
    /// broadcasts never leave the box).
    pub fn block_oneway(&mut self, from: Actor, to: Actor) {
        self.links.block(from, to);
    }

    /// Restores a one-way block set by [`Simulation::block_oneway`].
    pub fn unblock_oneway(&mut self, from: Actor, to: Actor) {
        self.links.unblock(from, to);
    }

    /// Removes every partition.
    pub fn heal_all(&mut self) {
        self.links.heal_all();
    }

    /// Replaces a registered node with a fresh process, modelling a
    /// crash-restart. Pending events addressed to the dead incarnation are
    /// purged (in-flight deliveries died with the process; its timers must
    /// not fire into the successor), link state recovers, and NIC/CPU
    /// accounting resets. The actor keeps its original RNG stream so a
    /// restart is as deterministic as everything else. If the simulation has
    /// started, the new process's `on_start` runs immediately.
    pub fn replace_node(&mut self, actor: Actor, node: Box<dyn Process<M>>) {
        assert!(
            self.nodes.contains_key(&actor),
            "replace_node: {actor:?} was never registered"
        );
        self.queue.retain(|e| e.target != actor);
        self.links.recover(actor);
        self.nic_free.remove(&actor);
        self.cpu_free.remove(&actor);
        self.nodes.insert(actor, node);
        if self.started {
            let mut outputs = Effects::new();
            {
                let node = self.nodes.get_mut(&actor).expect("replaced node");
                let rng = self.node_rngs.get_mut(&actor).expect("node rng");
                let mut ctx =
                    Context::new(self.now, actor, rng, &mut self.next_timer_id, &mut outputs);
                node.on_start(&mut ctx);
            }
            self.apply_outputs(actor, outputs);
        }
    }

    /// The time of the earliest pending event, if any. Lets an external
    /// driver interleave scheduled fault injection with [`Simulation::step`].
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Downcasts a node to its concrete type for inspection.
    pub fn node_as<T: 'static>(&self, actor: Actor) -> Option<&T> {
        self.nodes
            .get(&actor)
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutable downcast of a node to its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, actor: Actor) -> Option<&mut T> {
        self.nodes
            .get_mut(&actor)
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    /// The actors registered, in insertion order.
    pub fn actors(&self) -> &[Actor] {
        &self.node_order
    }

    /// Calls `on_start` on every node (in insertion order). Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let actors = self.node_order.clone();
        for actor in actors {
            let mut outputs = Effects::new();
            {
                let node = self.nodes.get_mut(&actor).expect("registered node");
                let rng = self.node_rngs.get_mut(&actor).expect("node rng");
                let mut ctx =
                    Context::new(self.now, actor, rng, &mut self.next_timer_id, &mut outputs);
                node.on_start(&mut ctx);
            }
            self.apply_outputs(actor, outputs);
        }
    }

    /// Runs until the queue is exhausted or `deadline` is reached; the clock
    /// ends at `deadline` (or the last event time if the queue drained first).
    pub fn run_until(&mut self, deadline: SimTime) {
        if !self.started {
            self.start();
        }
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for an additional duration of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let event = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        self.now = self.now.max(event.at);
        self.stats.events_processed += 1;
        let actor = event.target;

        match event.payload {
            EventPayload::Deliver { from, message } => {
                // A crashed recipient silently loses the message.
                if self.links.is_down(actor) {
                    self.stats.blocked += 1;
                    return true;
                }
                // CPU saturation: if the node is still busy, the message waits.
                let busy_until = self.cpu_free.get(&actor).copied().unwrap_or(SimTime::ZERO);
                if busy_until > event.at {
                    self.queue
                        .push(busy_until, actor, EventPayload::Deliver { from, message });
                    return true;
                }
                self.stats
                    .record_delivery(message.kind(), message.wire_size());
                let mut outputs = Effects::new();
                {
                    let node = match self.nodes.get_mut(&actor) {
                        Some(n) => n,
                        None => return true,
                    };
                    let rng = self.node_rngs.get_mut(&actor).expect("node rng");
                    let mut ctx =
                        Context::new(self.now, actor, rng, &mut self.next_timer_id, &mut outputs);
                    node.on_message(from, message, &mut ctx);
                }
                self.apply_outputs(actor, outputs);
            }
            EventPayload::Timer { id, tag } => {
                if self.cancelled.remove(&id) {
                    self.stats.timers_cancelled += 1;
                    return true;
                }
                if self.links.is_down(actor) {
                    return true;
                }
                self.stats.timers_fired += 1;
                let mut outputs = Effects::new();
                {
                    let node = match self.nodes.get_mut(&actor) {
                        Some(n) => n,
                        None => return true,
                    };
                    let rng = self.node_rngs.get_mut(&actor).expect("node rng");
                    let mut ctx =
                        Context::new(self.now, actor, rng, &mut self.next_timer_id, &mut outputs);
                    node.on_timer(id, tag, &mut ctx);
                }
                self.apply_outputs(actor, outputs);
            }
        }
        true
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Turns a handler's buffered effects into future events.
    fn apply_outputs(&mut self, from: Actor, outputs: Effects<M>) {
        // CPU charge: the node is busy for `cpu` after this handler.
        if outputs.cpu > SimDuration::ZERO {
            let free = self.cpu_free.entry(from).or_insert(SimTime::ZERO);
            let base = (*free).max(self.now);
            *free = base + outputs.cpu;
        }

        // Timer cancellations.
        for id in outputs.cancels {
            self.cancelled.insert(id);
        }

        // Timers.
        for (id, delay, tag) in outputs.timers {
            self.queue
                .push(self.now + delay, from, EventPayload::Timer { id, tag });
        }

        // Message sends: NIC serialization + propagation latency. A
        // broadcast expands into per-recipient delivery events here (the
        // simulator models each copy on the NIC); the payload is cloned per
        // extra recipient, which is cheap for the Arc-shared hot-path
        // messages and preserves the per-recipient bandwidth accounting.
        for emission in outputs.emissions {
            match emission {
                Emission::Send(to, message) => self.queue_send(from, to, message),
                Emission::Broadcast(tos, message) => {
                    if let Some((&last, rest)) = tos.split_last() {
                        for &to in rest {
                            self.queue_send(from, to, message.clone());
                        }
                        self.queue_send(from, last, message);
                    }
                }
            }
        }
    }

    /// Queues one unicast delivery, applying link state, drop probability,
    /// NIC serialization, and propagation latency.
    fn queue_send(&mut self, from: Actor, to: Actor, message: M) {
        self.stats.sent_total += 1;
        if !self.links.can_deliver(from, to) {
            self.stats.blocked += 1;
            return;
        }
        if self.network.should_drop(&mut self.net_rng) {
            self.stats.dropped += 1;
            return;
        }
        let serialization = self.network.serialization_delay(message.wire_size());
        let nic = self.nic_free.entry(from).or_insert(SimTime::ZERO);
        let departure = (*nic).max(self.now) + serialization;
        *nic = departure;
        let latency = self.network.propagation_delay(&mut self.net_rng);
        let arrival = departure + latency;
        self.queue
            .push(arrival, to, EventPayload::Deliver { from, message });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyModel;
    use prestige_types::ServerId;
    use std::any::Any;

    /// A tiny ping-pong protocol used to exercise the runtime.
    #[derive(Debug, Clone)]
    enum PingMsg {
        Ping(u64),
        Pong(u64),
    }

    impl Wire for PingMsg {
        fn wire_size(&self) -> usize {
            64
        }
        fn kind(&self) -> &'static str {
            match self {
                PingMsg::Ping(_) => "Ping",
                PingMsg::Pong(_) => "Pong",
            }
        }
    }

    struct Pinger {
        peer: Actor,
        rounds: u64,
        completed: u64,
        tick_count: u64,
    }

    impl Process<PingMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<PingMsg>) {
            ctx.send(self.peer, PingMsg::Ping(0));
            ctx.set_timer(SimDuration::from_ms(1000.0), 1);
        }
        fn on_message(&mut self, from: Actor, message: PingMsg, ctx: &mut Context<PingMsg>) {
            if let PingMsg::Pong(i) = message {
                self.completed = i + 1;
                if i + 1 < self.rounds {
                    ctx.send(from, PingMsg::Ping(i + 1));
                }
            }
        }
        fn on_timer(&mut self, _id: TimerId, tag: u64, _ctx: &mut Context<PingMsg>) {
            if tag == 1 {
                self.tick_count += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Ponger {
        cpu_ms: f64,
    }

    impl Process<PingMsg> for Ponger {
        fn on_message(&mut self, from: Actor, message: PingMsg, ctx: &mut Context<PingMsg>) {
            if let PingMsg::Ping(i) = message {
                ctx.charge_cpu_ms(self.cpu_ms);
                ctx.send(from, PingMsg::Pong(i));
            }
        }
        fn on_timer(&mut self, _id: TimerId, _tag: u64, _ctx: &mut Context<PingMsg>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn s(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    fn build(seed: u64, rounds: u64, cpu_ms: f64) -> Simulation<PingMsg> {
        let net = NetworkConfig {
            latency: LatencyModel::Constant { ms: 1.0 },
            bandwidth_bytes_per_sec: f64::INFINITY,
            drop_probability: 0.0,
        };
        let mut sim = Simulation::new(seed, net);
        sim.add_node(
            s(0),
            Box::new(Pinger {
                peer: s(1),
                rounds,
                completed: 0,
                tick_count: 0,
            }),
        );
        sim.add_node(s(1), Box::new(Ponger { cpu_ms }));
        sim
    }

    #[test]
    fn ping_pong_completes_all_rounds() {
        let mut sim = build(1, 10, 0.0);
        sim.run_until(SimTime::from_ms(100.0));
        let pinger: &Pinger = sim.node_as(s(0)).unwrap();
        assert_eq!(pinger.completed, 10);
        assert_eq!(sim.stats().delivered("Ping"), 10);
        assert_eq!(sim.stats().delivered("Pong"), 10);
    }

    #[test]
    fn timer_fires_and_clock_advances_to_deadline() {
        let mut sim = build(1, 1, 0.0);
        sim.run_until(SimTime::from_ms(2500.0));
        let pinger: &Pinger = sim.node_as(s(0)).unwrap();
        assert_eq!(pinger.tick_count, 1);
        assert_eq!(sim.now(), SimTime::from_ms(2500.0));
        assert!(sim.stats().timers_fired >= 1);
    }

    #[test]
    fn same_seed_same_outcome() {
        let mut a = build(7, 50, 0.1);
        let mut b = build(7, 50, 0.1);
        a.run_until(SimTime::from_ms(500.0));
        b.run_until(SimTime::from_ms(500.0));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn cpu_cost_slows_down_processing() {
        let mut fast = build(1, 100, 0.0);
        let mut slow = build(1, 100, 5.0);
        fast.run_until(SimTime::from_ms(300.0));
        slow.run_until(SimTime::from_ms(300.0));
        let fast_done = fast.node_as::<Pinger>(s(0)).unwrap().completed;
        let slow_done = slow.node_as::<Pinger>(s(0)).unwrap().completed;
        assert_eq!(fast_done, 100);
        assert!(
            slow_done < 70,
            "5 ms CPU per round should cap progress well below 100, got {slow_done}"
        );
    }

    #[test]
    fn crashed_node_stops_responding() {
        let mut sim = build(1, 100, 0.0);
        sim.start();
        sim.run_until(SimTime::from_ms(10.0));
        sim.crash(s(1));
        let before = sim.node_as::<Pinger>(s(0)).unwrap().completed;
        sim.run_until(SimTime::from_ms(100.0));
        let after = sim.node_as::<Pinger>(s(0)).unwrap().completed;
        assert!(sim.is_down(s(1)));
        // At most one in-flight pong can arrive after the crash point.
        assert!(after <= before + 1);
        assert!(sim.stats().blocked > 0);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut sim = build(1, 1000, 0.0);
        sim.start();
        sim.partition(s(0), s(1));
        sim.run_until(SimTime::from_ms(50.0));
        assert_eq!(sim.node_as::<Pinger>(s(0)).unwrap().completed, 0);
        sim.heal(s(0), s(1));
        // The ping was lost during the partition; nothing restarts it in this
        // toy protocol, so just confirm the link state works.
        assert!(sim.stats().blocked > 0);
        sim.heal_all();
    }

    #[test]
    fn dropped_messages_are_counted() {
        let net = NetworkConfig {
            latency: LatencyModel::Constant { ms: 1.0 },
            bandwidth_bytes_per_sec: f64::INFINITY,
            drop_probability: 1.0,
        };
        let mut sim = Simulation::new(3, net);
        sim.add_node(
            s(0),
            Box::new(Pinger {
                peer: s(1),
                rounds: 5,
                completed: 0,
                tick_count: 0,
            }),
        );
        sim.add_node(s(1), Box::new(Ponger { cpu_ms: 0.0 }));
        sim.run_until(SimTime::from_ms(100.0));
        assert_eq!(sim.stats().dropped, 1);
        assert_eq!(sim.node_as::<Pinger>(s(0)).unwrap().completed, 0);
    }

    #[test]
    fn bandwidth_serializes_back_to_back_sends() {
        // 64-byte messages over a 64 byte/s NIC take 1 s each to serialize.
        let net = NetworkConfig {
            latency: LatencyModel::Constant { ms: 0.0 },
            bandwidth_bytes_per_sec: 64.0,
            drop_probability: 0.0,
        };
        let mut sim = Simulation::new(4, net);
        sim.add_node(
            s(0),
            Box::new(Pinger {
                peer: s(1),
                rounds: 3,
                completed: 0,
                tick_count: 0,
            }),
        );
        sim.add_node(s(1), Box::new(Ponger { cpu_ms: 0.0 }));
        sim.run_until(SimTime::from_secs(2.5));
        // Round trips now cost ~2 s of serialization each; only the first can
        // finish by 2.5 s.
        assert_eq!(sim.node_as::<Pinger>(s(0)).unwrap().completed, 1);
    }

    #[test]
    fn one_way_block_is_asymmetric() {
        let mut sim = build(1, 1000, 0.0);
        sim.start();
        // Block only the ponger's replies: pings still arrive, pongs are lost.
        sim.block_oneway(s(1), s(0));
        sim.run_until(SimTime::from_ms(50.0));
        assert_eq!(sim.node_as::<Pinger>(s(0)).unwrap().completed, 0);
        assert!(sim.stats().delivered("Ping") >= 1);
        assert!(sim.stats().blocked > 0);
        sim.unblock_oneway(s(1), s(0));
    }

    #[test]
    fn replace_node_restarts_cleanly() {
        let mut sim = build(1, 1000, 0.0);
        sim.start();
        sim.run_until(SimTime::from_ms(10.0));
        sim.crash(s(0));
        sim.run_until(SimTime::from_ms(20.0));
        // A fresh pinger restarts the protocol from round 0 via on_start.
        sim.replace_node(
            s(0),
            Box::new(Pinger {
                peer: s(1),
                rounds: 3,
                completed: 0,
                tick_count: 0,
            }),
        );
        assert!(!sim.is_down(s(0)));
        sim.run_until(SimTime::from_ms(100.0));
        assert_eq!(sim.node_as::<Pinger>(s(0)).unwrap().completed, 3);
    }

    #[test]
    fn replace_node_purges_stale_timers() {
        let mut sim = build(1, 1, 0.0);
        sim.start();
        sim.run_until(SimTime::from_ms(10.0));
        // The original pinger armed a 1 s timer; replacing it must drop that
        // event so the successor never sees a timer it did not set.
        sim.replace_node(
            s(0),
            Box::new(Pinger {
                peer: s(1),
                rounds: 1,
                completed: 0,
                tick_count: 0,
            }),
        );
        sim.run_until(SimTime::from_ms(990.0));
        // Only the replacement's own timer (armed at t=10 ms, due t=1010 ms)
        // remains; the original (due t=1000 ms) must not fire.
        let ticks_before = sim.node_as::<Pinger>(s(0)).unwrap().tick_count;
        assert_eq!(ticks_before, 0);
        sim.run_until(SimTime::from_ms(1500.0));
        assert_eq!(sim.node_as::<Pinger>(s(0)).unwrap().tick_count, 1);
    }

    #[test]
    fn next_event_time_tracks_queue_head() {
        let mut sim = build(1, 1, 0.0);
        assert_eq!(sim.next_event_time(), None);
        sim.start();
        let head = sim.next_event_time().expect("events pending after start");
        assert!(head >= SimTime::ZERO);
    }

    #[test]
    fn actors_and_pending_events_reporting() {
        let mut sim = build(1, 1, 0.0);
        assert_eq!(sim.actors(), &[s(0), s(1)]);
        sim.start();
        assert!(sim.pending_events() > 0);
    }
}
