//! Node configuration for multi-process deployments: a small TOML subset
//! parser and the `prestige-node` config schema.
//!
//! The supported TOML subset covers what cluster configs need — `[section]`
//! headers, `key = value` pairs with string / integer / float / boolean
//! values, comments, and blank lines. (A full TOML crate is unavailable in
//! the offline build environment; see `crates/compat/README.md`.)
//!
//! ```toml
//! # cluster.toml — one file shared by every node
//! [cluster]
//! n = 4
//! seed = 7
//! batch_size = 100
//! payload_size = 32
//! clients = 1
//! # pipeline_depth = 4     # leader replication window
//! # verify_workers = 0     # off-loop crypto worker threads
//! # apply_workers = 0      # off-loop committed-block apply worker threads
//! # rotation_ms = 10000.0  # timing view-change policy (r10); omit = on-failure-only
//! # checkpoint_interval = 64  # certified checkpoint + WAL GC cadence (0 = off)
//!
//! [node]
//! role = "server"     # or "client"
//! id = 0
//!
//! [workload]
//! concurrency = 64
//! duration_s = 30.0
//!
//! # Optional adversarial deployment: which of the paper's §6.2 attacks the
//! # *last* `count` servers of the cluster perform (every node derives the
//! # same assignment from the shared file; this node misbehaves only if its
//! # own id falls in that suffix).
//! [faults]
//! plan = "vc_quiet"   # none | timeout | quiet | equiv | vc_quiet | vc_equiv
//! count = 1
//! strategy = "s1"     # s1 = attack always, s2 = only when compensable
//!
//! # Optional durable storage plane: hash-chained WAL + restart-from-disk.
//! [storage]
//! dir = "/var/lib/prestige"   # server i logs under <dir>/server-<i>/
//! # segment_bytes = 4194304
//! # sync_every_n = 64
//! # sync_interval_ms = 5.0
//!
//! [peers]
//! s0 = "127.0.0.1:7000"
//! s1 = "127.0.0.1:7001"
//! s2 = "127.0.0.1:7002"
//! s3 = "127.0.0.1:7003"
//! c0 = "127.0.0.1:7100"
//! ```

use crate::cluster::StoragePlan;
use prestige_core::{AttackStrategy, ByzantineBehavior};
use prestige_types::{Actor, ClientId, ClusterConfig, ServerId, ViewChangePolicy};
use prestige_workloads::FaultPlan;
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;

/// A scalar TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl TomlValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_int(&self) -> Option<i64> {
        match self {
            TomlValue::Int(i) => Some(*i),
            _ => None,
        }
    }
    fn as_float(&self) -> Option<f64> {
        match self {
            TomlValue::Float(f) => Some(*f),
            TomlValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// A parsed TOML document: section → key → value.
pub type TomlDoc = BTreeMap<String, BTreeMap<String, TomlValue>>;

/// Errors from config parsing.
#[derive(Debug)]
pub enum ConfigError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A required key was absent or had the wrong type.
    Missing(String),
    /// A value was present but invalid (bad address, bad role, ...).
    Invalid(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ConfigError::Missing(k) => write!(f, "missing or mistyped key: {k}"),
            ConfigError::Invalid(m) => write!(f, "invalid value: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parses the supported TOML subset.
pub fn parse_toml(text: &str) -> Result<TomlDoc, ConfigError> {
    let mut doc: TomlDoc = BTreeMap::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            doc.entry(section.clone()).or_default();
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| ConfigError::Syntax {
            line: line_no,
            message: format!("expected `key = value`, got `{line}`"),
        })?;
        let value = parse_value(value.trim()).ok_or_else(|| ConfigError::Syntax {
            line: line_no,
            message: format!("unparsable value `{}`", value.trim()),
        })?;
        doc.entry(section.clone())
            .or_default()
            .insert(key.trim().to_string(), value);
    }
    Ok(doc)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Option<TomlValue> {
    if let Some(inner) = text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Some(TomlValue::Str(inner.to_string()));
    }
    match text {
        "true" => return Some(TomlValue::Bool(true)),
        "false" => return Some(TomlValue::Bool(false)),
        _ => {}
    }
    let normalized = text.replace('_', "");
    if let Ok(i) = normalized.parse::<i64>() {
        return Some(TomlValue::Int(i));
    }
    if let Ok(f) = normalized.parse::<f64>() {
        return Some(TomlValue::Float(f));
    }
    None
}

/// Which node this process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// A consensus server with the given id.
    Server(ServerId),
    /// A workload client with the given id.
    Client(ClientId),
}

impl NodeRole {
    /// The actor identity of this role.
    pub fn actor(&self) -> Actor {
        match self {
            NodeRole::Server(s) => Actor::Server(*s),
            NodeRole::Client(c) => Actor::Client(*c),
        }
    }
}

/// Everything `prestige-node` needs to join a cluster.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This process's role and identity.
    pub role: NodeRole,
    /// Consensus configuration (shared by every node in the cluster).
    pub cluster: ClusterConfig,
    /// Deterministic seed shared by the cluster (keys, timeout jitter).
    pub seed: u64,
    /// Number of clients the shared key registry must cover.
    pub clients: u64,
    /// Closed-loop window for client roles.
    pub concurrency: usize,
    /// How long to run before reporting and exiting; `None` = run forever.
    pub duration_s: Option<f64>,
    /// The cluster-wide fault plan (which servers misbehave and how);
    /// [`FaultPlan::None`] for benign deployments.
    pub fault_plan: FaultPlan,
    /// Address this node listens on (its own entry in `[peers]`).
    pub listen: SocketAddr,
    /// Peer addresses (including this node's own entry).
    pub peers: HashMap<Actor, SocketAddr>,
    /// Durable storage plan (`[storage]` section); `None` = in-memory only.
    /// Server `i` logs under `<storage.dir>/server-<i>/`.
    pub storage: Option<StoragePlan>,
}

impl NodeConfig {
    /// Loads a [`NodeConfig`] from TOML text. `role_override`, when given,
    /// replaces the `[node]` section's role/id (so one file can serve all
    /// nodes: `prestige-node --config cluster.toml --as s2`).
    pub fn from_toml(text: &str, role_override: Option<&str>) -> Result<Self, ConfigError> {
        let doc = parse_toml(text)?;
        let get = |section: &str, key: &str| -> Option<&TomlValue> {
            doc.get(section).and_then(|s| s.get(key))
        };

        // Integer keys are range-checked: a negative value must be a config
        // error, not a silent two's-complement wrap into a huge count.
        fn positive<T: TryFrom<i64>>(key: &str, raw: i64) -> Result<T, ConfigError> {
            T::try_from(raw)
                .map_err(|_| ConfigError::Invalid(format!("{key} = {raw} is out of range")))
        }
        let n: u32 = positive(
            "cluster.n",
            get("cluster", "n")
                .and_then(TomlValue::as_int)
                .ok_or_else(|| ConfigError::Missing("cluster.n".into()))?,
        )?;
        let seed: u64 = positive(
            "cluster.seed",
            get("cluster", "seed")
                .and_then(TomlValue::as_int)
                .unwrap_or(7),
        )?;
        let clients: u64 = positive(
            "cluster.clients",
            get("cluster", "clients")
                .and_then(TomlValue::as_int)
                .unwrap_or(1),
        )?;

        let mut cluster = ClusterConfig::new(n);
        if let Some(beta) = get("cluster", "batch_size").and_then(TomlValue::as_int) {
            cluster.batch_size = positive("cluster.batch_size", beta)?;
        }
        if let Some(m) = get("cluster", "payload_size").and_then(TomlValue::as_int) {
            cluster.payload_size = positive("cluster.payload_size", m)?;
        }
        if let Some(depth) = get("cluster", "pipeline_depth").and_then(TomlValue::as_int) {
            let depth: usize = positive("cluster.pipeline_depth", depth)?;
            cluster.pipeline_depth = depth.max(1);
        }
        if let Some(workers) = get("cluster", "verify_workers").and_then(TomlValue::as_int) {
            cluster.verify_workers = positive("cluster.verify_workers", workers)?;
        }
        if let Some(workers) = get("cluster", "apply_workers").and_then(TomlValue::as_int) {
            cluster.apply_workers = positive("cluster.apply_workers", workers)?;
        }
        if let Some(ms) = get("cluster", "rotation_ms").and_then(TomlValue::as_float) {
            if ms > 0.0 {
                cluster.policy = ViewChangePolicy::Timing { interval_ms: ms };
            }
        }
        if let Some(iv) = get("cluster", "checkpoint_interval").and_then(TomlValue::as_int) {
            cluster.checkpoint_interval = positive("cluster.checkpoint_interval", iv)?;
        }
        if let Some(ms) = get("timeouts", "base_timeout_ms").and_then(TomlValue::as_float) {
            cluster.timeouts.base_timeout_ms = ms;
        }
        if let Some(ms) = get("timeouts", "randomization_ms").and_then(TomlValue::as_float) {
            cluster.timeouts.randomization_ms = ms;
        }
        if let Some(ms) = get("timeouts", "client_timeout_ms").and_then(TomlValue::as_float) {
            cluster.timeouts.client_timeout_ms = ms;
        }
        if let Some(ms) = get("timeouts", "complaint_grace_ms").and_then(TomlValue::as_float) {
            cluster.timeouts.complaint_grace_ms = ms;
        }

        let role_text: String = match role_override {
            Some(text) => text.to_string(),
            None => {
                let role = get("node", "role")
                    .and_then(TomlValue::as_str)
                    .ok_or_else(|| ConfigError::Missing("node.role".into()))?;
                let id = get("node", "id")
                    .and_then(TomlValue::as_int)
                    .ok_or_else(|| ConfigError::Missing("node.id".into()))?;
                let prefix = match role {
                    "server" => 's',
                    "client" => 'c',
                    other => return Err(ConfigError::Invalid(format!("node.role `{other}`"))),
                };
                format!("{prefix}{id}")
            }
        };
        let role = parse_role(&role_text)?;

        let mut peers = HashMap::new();
        if let Some(section) = doc.get("peers") {
            for (key, value) in section {
                let actor = parse_role(key)?.actor();
                let addr: SocketAddr = value
                    .as_str()
                    .ok_or_else(|| ConfigError::Invalid(format!("peers.{key} must be a string")))?
                    .parse()
                    .map_err(|_| ConfigError::Invalid(format!("peers.{key}: bad address")))?;
                peers.insert(actor, addr);
            }
        }
        let listen = *peers
            .get(&role.actor())
            .ok_or_else(|| ConfigError::Missing(format!("peers entry for {}", role_text)))?;

        let fault_plan = match get("faults", "plan").and_then(TomlValue::as_str) {
            None => FaultPlan::None,
            Some(label) => {
                let count: u32 = positive(
                    "faults.count",
                    get("faults", "count")
                        .and_then(TomlValue::as_int)
                        .unwrap_or(1),
                )?;
                let strategy = match get("faults", "strategy").and_then(TomlValue::as_str) {
                    None => AttackStrategy::Always,
                    Some(text) => FaultPlan::parse_strategy(text).ok_or_else(|| {
                        ConfigError::Invalid(format!(
                            "faults.strategy `{text}` (expected s1 or s2)"
                        ))
                    })?,
                };
                FaultPlan::from_parts(label, count, strategy).ok_or_else(|| {
                    ConfigError::Invalid(format!(
                        "faults.plan `{label}` (expected none, timeout, quiet, equiv, vc_quiet, \
                         or vc_equiv)"
                    ))
                })?
            }
        };

        let concurrency: usize = positive(
            "workload.concurrency",
            get("workload", "concurrency")
                .and_then(TomlValue::as_int)
                .unwrap_or(64),
        )?;
        let duration_s = get("workload", "duration_s").and_then(TomlValue::as_float);

        // Optional `[storage]` section: durable WAL + restart-from-disk.
        let storage = match get("storage", "dir").and_then(TomlValue::as_str) {
            None => None,
            Some(dir) => {
                let mut plan = StoragePlan::new(dir);
                if let Some(bytes) = get("storage", "segment_bytes").and_then(TomlValue::as_int) {
                    plan.options.segment_bytes = positive("storage.segment_bytes", bytes)?;
                }
                if let Some(n) = get("storage", "sync_every_n").and_then(TomlValue::as_int) {
                    plan.options.sync_every_n = positive("storage.sync_every_n", n)?;
                }
                if let Some(ms) = get("storage", "sync_interval_ms").and_then(TomlValue::as_float) {
                    plan.options.sync_interval_ms = ms;
                }
                Some(plan)
            }
        };

        Ok(NodeConfig {
            role,
            cluster,
            seed,
            clients,
            concurrency,
            duration_s,
            fault_plan,
            listen,
            peers,
            storage,
        })
    }

    /// The Byzantine behaviour this node runs with under the configured
    /// fault plan. Clients are always correct; a server misbehaves only when
    /// its id falls in the plan's faulty suffix — every process derives the
    /// same assignment from the shared cluster file.
    pub fn behavior(&self) -> ByzantineBehavior {
        match self.role {
            NodeRole::Server(id) => self.fault_plan.behavior_of(self.cluster.n(), id.0),
            NodeRole::Client(_) => ByzantineBehavior::Correct,
        }
    }
}

/// Parses `s3` / `c0` style node names.
fn parse_role(text: &str) -> Result<NodeRole, ConfigError> {
    let bad = || ConfigError::Invalid(format!("node name `{text}` (expected sN or cN)"));
    if let Some(rest) = text.strip_prefix('s') {
        let id: u32 = rest.parse().map_err(|_| bad())?;
        Ok(NodeRole::Server(ServerId(id)))
    } else if let Some(rest) = text.strip_prefix('c') {
        let id: u64 = rest.parse().map_err(|_| bad())?;
        Ok(NodeRole::Client(ClientId(id)))
    } else {
        Err(bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# full cluster description
[cluster]
n = 4
seed = 11
batch_size = 200
clients = 2
pipeline_depth = 8
verify_workers = 2
apply_workers = 2

[node]
role = "server"
id = 2

[workload]
concurrency = 32
duration_s = 5.5

[timeouts]
base_timeout_ms = 500.0

[peers]
s0 = "127.0.0.1:7000"
s1 = "127.0.0.1:7001"
s2 = "127.0.0.1:7002"  # this node
s3 = "127.0.0.1:7003"
c0 = "127.0.0.1:7100"
c1 = "127.0.0.1:7101"
"#;

    #[test]
    fn parses_full_config() {
        let cfg = NodeConfig::from_toml(SAMPLE, None).unwrap();
        assert_eq!(cfg.role, NodeRole::Server(ServerId(2)));
        assert_eq!(cfg.cluster.n(), 4);
        assert_eq!(cfg.cluster.batch_size, 200);
        assert_eq!(cfg.cluster.pipeline_depth, 8);
        assert_eq!(cfg.cluster.verify_workers, 2);
        assert_eq!(cfg.cluster.apply_workers, 2);
        assert_eq!(cfg.cluster.timeouts.base_timeout_ms, 500.0);
        assert_eq!(cfg.seed, 11);
        assert_eq!(cfg.clients, 2);
        assert_eq!(cfg.concurrency, 32);
        assert_eq!(cfg.duration_s, Some(5.5));
        assert_eq!(cfg.listen, "127.0.0.1:7002".parse().unwrap());
        assert_eq!(cfg.peers.len(), 6);
    }

    #[test]
    fn role_override_repoints_listen_address() {
        let cfg = NodeConfig::from_toml(SAMPLE, Some("c1")).unwrap();
        assert_eq!(cfg.role, NodeRole::Client(ClientId(1)));
        assert_eq!(cfg.listen, "127.0.0.1:7101".parse().unwrap());
    }

    #[test]
    fn benign_config_has_no_faults_and_failure_only_policy() {
        let cfg = NodeConfig::from_toml(SAMPLE, None).unwrap();
        assert_eq!(cfg.fault_plan, FaultPlan::None);
        assert_eq!(cfg.behavior(), ByzantineBehavior::Correct);
        assert_eq!(cfg.cluster.policy, ViewChangePolicy::OnFailureOnly);
    }

    #[test]
    fn fault_plan_and_rotation_policy_parse() {
        let text =
            format!("{SAMPLE}\n[faults]\nplan = \"vc_quiet\"\ncount = 1\nstrategy = \"s2\"\n");
        let text = text.replace("n = 4", "n = 4\nrotation_ms = 5000.0");
        let cfg = NodeConfig::from_toml(&text, Some("s3")).unwrap();
        assert_eq!(
            cfg.fault_plan,
            FaultPlan::RepeatedVcQuiet {
                count: 1,
                strategy: AttackStrategy::WhenCompensable,
            }
        );
        // s3 is the last server of 4 → it is the faulty one; s0 stays correct.
        assert_eq!(
            cfg.behavior(),
            ByzantineBehavior::RepeatedVcQuiet(AttackStrategy::WhenCompensable)
        );
        let correct = NodeConfig::from_toml(&text, Some("s0")).unwrap();
        assert_eq!(correct.behavior(), ByzantineBehavior::Correct);
        // Clients under the same plan stay correct.
        let client = NodeConfig::from_toml(&text, Some("c0")).unwrap();
        assert_eq!(client.behavior(), ByzantineBehavior::Correct);
        assert_eq!(
            cfg.cluster.policy,
            ViewChangePolicy::Timing {
                interval_ms: 5000.0
            }
        );
    }

    #[test]
    fn bad_fault_plan_and_strategy_are_rejected() {
        let bad_plan = format!("{SAMPLE}\n[faults]\nplan = \"nonsense\"\n");
        assert!(matches!(
            NodeConfig::from_toml(&bad_plan, None),
            Err(ConfigError::Invalid(_))
        ));
        let bad_strategy = format!("{SAMPLE}\n[faults]\nplan = \"vc_equiv\"\nstrategy = \"s9\"\n");
        assert!(matches!(
            NodeConfig::from_toml(&bad_strategy, None),
            Err(ConfigError::Invalid(_))
        ));
    }

    #[test]
    fn storage_section_parses_and_defaults_to_none() {
        let cfg = NodeConfig::from_toml(SAMPLE, None).unwrap();
        assert!(cfg.storage.is_none(), "no [storage] section = in-memory");

        let text = format!(
            "{SAMPLE}\n[storage]\ndir = \"/tmp/prestige-wal\"\nsegment_bytes = 1048576\n\
             sync_every_n = 8\nsync_interval_ms = 2.5\n"
        );
        let cfg = NodeConfig::from_toml(&text, None).unwrap();
        let plan = cfg.storage.expect("storage plan parsed");
        assert_eq!(plan.root, std::path::PathBuf::from("/tmp/prestige-wal"));
        assert_eq!(
            plan.server_dir(ServerId(2)),
            std::path::PathBuf::from("/tmp/prestige-wal/server-2")
        );
        assert_eq!(plan.options.segment_bytes, 1 << 20);
        assert_eq!(plan.options.sync_every_n, 8);
        assert_eq!(plan.options.sync_interval_ms, 2.5);
    }

    #[test]
    fn checkpoint_interval_parses() {
        let text = SAMPLE.replace("n = 4", "n = 4\ncheckpoint_interval = 128");
        let cfg = NodeConfig::from_toml(&text, None).unwrap();
        assert_eq!(cfg.cluster.checkpoint_interval, 128);
    }

    #[test]
    fn missing_required_keys_are_reported() {
        assert!(matches!(
            NodeConfig::from_toml("[node]\nrole = \"server\"\nid = 0\n", None),
            Err(ConfigError::Missing(_))
        ));
    }

    #[test]
    fn comments_and_underscore_numbers_parse() {
        let doc = parse_toml("a = 1_000 # thousand\nb = \"x # not a comment\"\n").unwrap();
        assert_eq!(doc[""]["a"], TomlValue::Int(1000));
        assert_eq!(doc[""]["b"], TomlValue::Str("x # not a comment".into()));
    }

    #[test]
    fn bad_lines_name_their_line_number() {
        let err = parse_toml("ok = 1\nnot a kv line\n").unwrap_err();
        match err {
            ConfigError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
