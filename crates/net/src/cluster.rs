//! Cluster launcher: brings up a full PrestigeBFT cluster (servers + closed
//! loop clients) on real runtimes, over either transport.
//!
//! This is the net-runtime analogue of building a `Simulation` by hand: one
//! call wires key registries, transports, and node runtimes together. The
//! loopback variant is what integration tests and the example use; the TCP
//! variant backs multi-process deployments via the `prestige-node` binary
//! (which launches exactly one node per process from a TOML config).
//!
//! Clusters can be launched *adversarially*: [`LocalCluster::launch_adversarial`]
//! attaches per-server [`ByzantineBehavior`]s (the paper's F1–F4 attacks, with
//! S1/S2 strategies) and an optional [`NetChaos`] controller that injects
//! delay, loss, and partitions at the [`Transport`] seam while the cluster
//! runs. Safety under those conditions is checked with
//! [`LocalCluster::verify_no_fork`], which compares the digest-chained
//! committed logs across replicas.

use crate::chaos::{ChaosTransport, NetChaos};
use crate::runtime::NodeHandle;
use crate::tcp::{TcpConfig, TcpTransport};
use crate::transport::{LoopbackNet, Transport, TransportStats, TransportTotals};
use prestige_core::{
    ByzantineBehavior, ClientConfig, ClientStats, LoopProfile, LoopSnapshot, PrestigeClient,
    PrestigeServer, ServerStats,
};
use prestige_crypto::{JobSource, KeyRegistry};
use prestige_storage::{StorageStats, Wal, WalOptions};
use prestige_types::{Actor, ClientId, ClusterConfig, Digest, Message, ServerId, View};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where and how a cluster persists per-server write-ahead logs. Server `i`
/// keeps its segments under `<root>/server-<i>/`; restarting a server reopens
/// that directory and replays it before rejoining.
#[derive(Debug, Clone)]
pub struct StoragePlan {
    /// Root directory for the whole cluster's logs.
    pub root: PathBuf,
    /// WAL tuning (segment size, fsync batching) shared by every server.
    pub options: WalOptions,
}

impl StoragePlan {
    /// A plan with default WAL tuning rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        StoragePlan {
            root: root.into(),
            options: WalOptions::default(),
        }
    }

    /// The WAL directory of server `id`.
    pub fn server_dir(&self, id: ServerId) -> PathBuf {
        self.root.join(format!("server-{}", id.0))
    }
}

/// Client refill batch used by real-runtime clusters: clients top the window
/// back up once a quarter of it has drained, instead of waiting for a full
/// drain. Full-drain refills convoy the whole window behind the leader's
/// batch timer — a handful of stragglers from the previous window hold every
/// replacement proposal hostage — which is exactly the p99 tail the
/// benchmarks kept showing. The simulation keeps the legacy full-drain
/// default (`refill_batch = 0`) so recorded schedules replay bit-identically.
fn default_refill_batch(concurrency: usize) -> usize {
    (concurrency / 4).max(1)
}

/// Wraps a transport endpoint in the chaos filter when a controller is
/// attached. `salt` differentiates the per-endpoint loss/jitter RNG streams.
fn maybe_chaotic(
    endpoint: impl Transport<Message> + 'static,
    chaos: &Option<NetChaos>,
    seed: u64,
    salt: u64,
) -> Box<dyn Transport<Message>> {
    match chaos {
        Some(controller) => Box::new(ChaosTransport::new(
            Box::new(endpoint),
            controller.clone(),
            seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )),
        None => Box::new(endpoint),
    }
}

/// The fork check shared by every cluster flavour: wherever two replicas
/// committed a block at the same sequence number, the digests (and, by
/// chaining, the whole prefix) must be identical. Lagging replicas are fine;
/// disagreeing ones are not. Returns the highest sequence committed on
/// *every* chain, or a description of the first divergence.
pub fn verify_no_fork_chains(chains: &[(ServerId, Vec<(u64, Digest)>)]) -> Result<u64, String> {
    let mut reference: HashMap<u64, (Digest, ServerId)> = HashMap::new();
    let mut common_tip: Option<u64> = None;
    for (id, chain) in chains {
        let tip = chain.last().map(|(n, _)| *n).unwrap_or(0);
        common_tip = Some(common_tip.map_or(tip, |t| t.min(tip)));
        for &(n, digest) in chain {
            match reference.get(&n) {
                Some((seen, owner)) if *seen != digest => {
                    return Err(format!(
                        "fork at sequence {n}: {id:?} committed {digest:?} but {owner:?} \
                         committed {seen:?}"
                    ));
                }
                Some(_) => {}
                None => {
                    reference.insert(n, (digest, *id));
                }
            }
        }
    }
    Ok(common_tip.unwrap_or(0))
}

/// A PrestigeBFT cluster running on real node runtimes in this process.
pub struct LocalCluster {
    config: ClusterConfig,
    registry: KeyRegistry,
    seed: u64,
    net: LoopbackNet<Message>,
    chaos: Option<NetChaos>,
    behaviors: HashMap<ServerId, ByzantineBehavior>,
    storage: Option<StoragePlan>,
    servers: HashMap<ServerId, NodeHandle<Message>>,
    clients: HashMap<ClientId, NodeHandle<Message>>,
    /// Per-actor transport counters, captured at spawn time (through the
    /// chaos wrapper, which shares its inner endpoint's stats). Entries
    /// survive crashes so reports still cover dead nodes' traffic.
    transport_stats: HashMap<Actor, Arc<TransportStats>>,
    /// Per-server event-loop stage profiles (entries survive crashes;
    /// restarts replace them with the fresh node's profile). Empty when the
    /// cluster was launched with profiling off.
    profiles: HashMap<ServerId, Arc<LoopProfile>>,
    profiling: bool,
}

/// Builds one server node — fresh or restarted — optionally replaying and
/// attaching its WAL, and spawns it on the loopback fabric.
#[allow(clippy::too_many_arguments)]
fn spawn_server(
    id: ServerId,
    config: &ClusterConfig,
    registry: &KeyRegistry,
    seed: u64,
    behavior: ByzantineBehavior,
    net: &LoopbackNet<Message>,
    chaos: &Option<NetChaos>,
    storage: &Option<StoragePlan>,
    profiling: bool,
) -> (
    NodeHandle<Message>,
    Arc<TransportStats>,
    Option<Arc<LoopProfile>>,
) {
    let mut server =
        PrestigeServer::with_behavior(id, config.clone(), registry.clone(), seed, behavior);
    if let Some(plan) = storage {
        let dir = plan.server_dir(id);
        std::fs::create_dir_all(&dir).expect("create WAL directory");
        // Replay-then-attach: the records rebuild committed state with
        // storage still detached (no re-appends), then the open WAL becomes
        // the server's durability sink.
        let (wal, records) = Wal::open(&dir, plan.options.clone()).expect("open WAL");
        server.replay_wal(records);
        server.attach_storage(Box::new(wal));
    }
    // `verify_workers > 0` moves signature/QC checks off the protocol loop,
    // `apply_workers > 0` moves committed-block adoption off it; the runtime
    // polls each pool and feeds completions back as events.
    let mut sources: Vec<Arc<dyn JobSource>> = Vec::new();
    if config.verify_workers > 0 {
        sources.push(server.spawn_verify_pool(config.verify_workers));
    }
    if config.apply_workers > 0 {
        sources.push(server.spawn_apply_pool(config.apply_workers));
    }
    let profile = profiling.then(|| {
        let p = Arc::new(LoopProfile::default());
        server.attach_profiler(Arc::clone(&p));
        p
    });
    let endpoint = net.endpoint(Actor::Server(id));
    let transport = maybe_chaotic(endpoint, chaos, seed, id.0 as u64);
    let stats = transport.stats();
    let handle =
        NodeHandle::spawn_instrumented(Box::new(server), transport, seed, sources, profile.clone());
    (handle, stats, profile)
}

impl LocalCluster {
    /// Launches `config.n()` servers and `clients` closed-loop clients (each
    /// keeping `concurrency` proposals in flight) over a loopback transport.
    /// All servers are correct and all links are healthy.
    pub fn launch(config: ClusterConfig, seed: u64, clients: u64, concurrency: usize) -> Self {
        Self::launch_adversarial(config, seed, clients, concurrency, &[], None)
    }

    /// [`Self::launch`] with a durable storage plan: every server writes its
    /// WAL under the plan's root and can be killed and restarted
    /// ([`Self::restart_server`]) from disk.
    pub fn launch_durable(
        config: ClusterConfig,
        seed: u64,
        clients: u64,
        concurrency: usize,
        storage: StoragePlan,
    ) -> Self {
        Self::launch_full(config, seed, clients, concurrency, &[], None, Some(storage))
    }

    /// [`Self::launch`] under adversarial conditions: server `i` runs with
    /// `behaviors[i]` (missing entries are [`ByzantineBehavior::Correct`]),
    /// and, when `chaos` is given, every endpoint — servers and clients — is
    /// wrapped in a [`ChaosTransport`] controlled by it, so partitions,
    /// delay, and loss can be injected while the cluster runs.
    pub fn launch_adversarial(
        config: ClusterConfig,
        seed: u64,
        clients: u64,
        concurrency: usize,
        behaviors: &[ByzantineBehavior],
        chaos: Option<NetChaos>,
    ) -> Self {
        Self::launch_full(config, seed, clients, concurrency, behaviors, chaos, None)
    }

    /// The full launcher: Byzantine behaviours, chaos, and durable storage
    /// in any combination. Stage profiling is on (it costs well under 1%,
    /// see the runtime docs); use [`Self::launch_configured`] to switch it
    /// off for overhead comparisons.
    pub fn launch_full(
        config: ClusterConfig,
        seed: u64,
        clients: u64,
        concurrency: usize,
        behaviors: &[ByzantineBehavior],
        chaos: Option<NetChaos>,
        storage: Option<StoragePlan>,
    ) -> Self {
        Self::launch_configured(
            config,
            seed,
            clients,
            concurrency,
            behaviors,
            chaos,
            storage,
            true,
        )
    }

    /// [`Self::launch_full`] with an explicit profiling switch.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_configured(
        config: ClusterConfig,
        seed: u64,
        clients: u64,
        concurrency: usize,
        behaviors: &[ByzantineBehavior],
        chaos: Option<NetChaos>,
        storage: Option<StoragePlan>,
        profiling: bool,
    ) -> Self {
        let registry = KeyRegistry::new(seed, config.n(), clients);
        let net: LoopbackNet<Message> = LoopbackNet::new();

        let mut behavior_map = HashMap::new();
        let mut servers = HashMap::new();
        let mut transport_stats = HashMap::new();
        let mut profiles = HashMap::new();
        for i in 0..config.n() {
            let id = ServerId(i);
            let behavior = behaviors.get(i as usize).copied().unwrap_or_default();
            behavior_map.insert(id, behavior);
            let (handle, stats, profile) = spawn_server(
                id, &config, &registry, seed, behavior, &net, &chaos, &storage, profiling,
            );
            transport_stats.insert(Actor::Server(id), stats);
            if let Some(profile) = profile {
                profiles.insert(id, profile);
            }
            servers.insert(id, handle);
        }

        let mut client_handles = HashMap::new();
        for c in 0..clients {
            let id = ClientId(c);
            let cc = ClientConfig::new(
                id,
                config.replicas.clone(),
                config.payload_size,
                concurrency,
            )
            .with_refill_batch(default_refill_batch(concurrency));
            let client = PrestigeClient::new(cc, &registry);
            let endpoint = net.endpoint(Actor::Client(id));
            let transport = maybe_chaotic(endpoint, &chaos, seed, 0x1_0000_0000u64 + c);
            transport_stats.insert(Actor::Client(id), transport.stats());
            client_handles.insert(id, NodeHandle::spawn(Box::new(client), transport, seed));
        }

        LocalCluster {
            config,
            registry,
            seed,
            net,
            chaos,
            behaviors: behavior_map,
            storage,
            servers,
            clients: client_handles,
            transport_stats,
            profiles,
            profiling,
        }
    }

    /// The cluster configuration the nodes were launched with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The underlying loopback fabric (for advanced fault injection).
    pub fn net(&self) -> &LoopbackNet<Message> {
        &self.net
    }

    /// The chaos controller the cluster was launched with, if any.
    pub fn chaos(&self) -> Option<&NetChaos> {
        self.chaos.as_ref()
    }

    /// The Byzantine behaviour server `id` was launched with.
    pub fn behavior_of(&self, id: ServerId) -> ByzantineBehavior {
        self.behaviors.get(&id).copied().unwrap_or_default()
    }

    /// Live server stats snapshot.
    pub fn server_stats(&self, id: ServerId) -> Option<ServerStats> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.stats().clone())
    }

    /// Live client stats snapshot.
    pub fn client_stats(&self, id: ClientId) -> Option<ClientStats> {
        self.clients
            .get(&id)?
            .inspect_as::<PrestigeClient, _, _>(|c| c.stats().clone())
    }

    /// The transport counters of `actor`'s endpoint (entries persist across
    /// crashes; restarts replace them with the fresh endpoint's counters).
    pub fn transport_stats_of(&self, actor: Actor) -> Option<Arc<TransportStats>> {
        self.transport_stats.get(&actor).map(Arc::clone)
    }

    /// Server `id`'s event-loop stage profile (`None` with profiling off).
    pub fn loop_profile_of(&self, id: ServerId) -> Option<LoopSnapshot> {
        self.profiles.get(&id).map(|p| p.snapshot())
    }

    /// The cluster-wide event-loop stage profile: every server's counters
    /// merged. Empty (all zeros) with profiling off.
    pub fn loop_profile(&self) -> LoopSnapshot {
        let mut merged = LoopSnapshot::default();
        for profile in self.profiles.values() {
            merged.merge(&profile.snapshot());
        }
        merged
    }

    /// Cluster-wide transport counter sums (servers and clients). On the
    /// loopback fabric the writer-loop counters are always zero.
    pub fn transport_totals(&self) -> TransportTotals {
        let mut totals = TransportTotals::default();
        for stats in self.transport_stats.values() {
            stats.accumulate_into(&mut totals);
        }
        totals
    }

    /// Clears every client's latency accounting (benchmark warmup boundary),
    /// so subsequent percentile reads cover only the measurement window.
    pub fn reset_client_latency(&self) {
        for handle in self.clients.values() {
            let _ = handle.inspect(|node| {
                if let Some(client) = node.as_any_mut().downcast_mut::<PrestigeClient>() {
                    client.reset_latency_stats();
                }
            });
        }
    }

    /// Total transactions confirmed across all clients.
    pub fn total_committed(&self) -> u64 {
        self.clients
            .keys()
            .filter_map(|&c| self.client_stats(c))
            .map(|s| s.committed_tx)
            .sum()
    }

    /// The current `(view, leader)` as observed by server `id`.
    pub fn view_of(&self, id: ServerId) -> Option<(View, ServerId)> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| (s.current_view(), s.current_leader()))
    }

    /// The current role of server `id` (follower / redeemer / candidate /
    /// leader), for scenario reports and diagnostics.
    pub fn role_of(&self, id: ServerId) -> Option<prestige_core::ServerRole> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.role())
    }

    /// One-line live state snapshot of server `id`
    /// ([`PrestigeServer::debug_snapshot`]), for failure diagnostics.
    pub fn debug_snapshot(&self, id: ServerId) -> Option<String> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.debug_snapshot())
    }

    /// The reputation penalties of every server as recorded in the latest
    /// vcBlock installed at observer `id`, sorted by server.
    pub fn reputations_at(&self, id: ServerId) -> Option<Vec<(ServerId, i64)>> {
        let n = self.config.n();
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(move |s| {
                (0..n)
                    .map(|i| (ServerId(i), s.store().current_rp(ServerId(i))))
                    .collect()
            })
    }

    /// Snapshot of server `id`'s committed txBlock chain as
    /// `(sequence number, digest)` pairs (genesis included).
    pub fn committed_chain(&self, id: ServerId) -> Option<Vec<(u64, Digest)>> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.store().chain_digests())
    }

    /// Safety check: verifies that the given servers' committed logs contain
    /// **no fork** — wherever two replicas have committed a block at the same
    /// sequence number, the block digests (and therefore, by chaining, the
    /// whole prefix) are identical. Lagging replicas are fine; disagreeing
    /// ones are not.
    ///
    /// Returns the highest sequence number committed on *every* checked
    /// server (the guaranteed-identical common prefix), or a description of
    /// the first divergence found.
    pub fn verify_no_fork(&self, servers: &[ServerId]) -> Result<u64, String> {
        let mut chains = Vec::with_capacity(servers.len());
        for &id in servers {
            let chain = self
                .committed_chain(id)
                .ok_or_else(|| format!("server {id:?} did not answer the chain snapshot"))?;
            chains.push((id, chain));
        }
        verify_no_fork_chains(&chains)
    }

    /// Crashes a server abruptly: its runtime thread stops and its endpoint
    /// deregisters, so all traffic toward it is dropped — exactly what a
    /// killed process looks like to the rest of the cluster.
    pub fn crash_server(&mut self, id: ServerId) {
        self.net.disconnect(Actor::Server(id));
        if let Some(handle) = self.servers.remove(&id) {
            let _ = handle.stop();
        }
    }

    /// Restarts a crashed server from its on-disk WAL: a **fresh**
    /// `PrestigeServer` is built, the log directory is reopened (torn tails
    /// truncated, chain verified), the surviving records are replayed into
    /// its block store, and the node rejoins the fabric — from where the
    /// sync plane pages it forward. Panics if the server is still running;
    /// launched without a [`StoragePlan`], the server rejoins blank (every
    /// block must come back over sync).
    pub fn restart_server(&mut self, id: ServerId) {
        assert!(
            !self.servers.contains_key(&id),
            "restart_server({id:?}): crash it first"
        );
        let behavior = self.behavior_of(id);
        let (handle, stats, profile) = spawn_server(
            id,
            &self.config,
            &self.registry,
            self.seed,
            behavior,
            &self.net,
            &self.chaos,
            &self.storage,
            self.profiling,
        );
        self.transport_stats.insert(Actor::Server(id), stats);
        if let Some(profile) = profile {
            self.profiles.insert(id, profile);
        }
        self.servers.insert(id, handle);
    }

    /// The storage plan the cluster was launched with, if any.
    pub fn storage_plan(&self) -> Option<&StoragePlan> {
        self.storage.as_ref()
    }

    /// Live storage-plane stats of server `id` (`None` when the server is
    /// down or the cluster is not durable).
    pub fn storage_stats(&self, id: ServerId) -> Option<StorageStats> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.storage_stats())
            .flatten()
    }

    /// Server `id`'s stable checkpoint height (0 = none yet).
    pub fn stable_checkpoint_of(&self, id: ServerId) -> Option<u64> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.stable_checkpoint())
    }

    /// Server `id`'s checkpoint-GC counters `(checkpoints_formed,
    /// gc_pruned_keys)`.
    pub fn checkpoint_counters(&self, id: ServerId) -> Option<(u64, u64)> {
        self.server_stats(id)
            .map(|s| (s.checkpoints_formed, s.gc_pruned_keys))
    }

    /// Chops up to `bytes` off the end of server `id`'s newest WAL segment —
    /// the torn-tail crash signature (a power cut mid-append). The server
    /// must be down. Returns how many bytes were actually removed.
    pub fn truncate_wal_tail(&self, id: ServerId, bytes: u64) -> std::io::Result<u64> {
        assert!(
            !self.servers.contains_key(&id),
            "truncate_wal_tail({id:?}): crash it first"
        );
        let plan = self.storage.as_ref().expect("durable cluster required");
        let dir = plan.server_dir(id);
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        segments.sort();
        let Some(last) = segments.last() else {
            return Ok(0);
        };
        let len = std::fs::metadata(last)?.len();
        let cut = bytes.min(len);
        let file = std::fs::OpenOptions::new().write(true).open(last)?;
        file.set_len(len - cut)?;
        Ok(cut)
    }

    /// Server ids currently alive.
    pub fn live_servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Server ids currently alive and launched as correct (the replicas whose
    /// logs the safety assertions compare).
    pub fn correct_servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self
            .servers
            .keys()
            .copied()
            .filter(|id| !self.behavior_of(*id).is_faulty())
            .collect();
        ids.sort();
        ids
    }

    /// Polls `predicate` against the cluster until it returns true or
    /// `timeout` elapses. Returns whether the predicate succeeded.
    pub fn wait_until(&self, timeout: Duration, mut predicate: impl FnMut(&Self) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if predicate(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops every node, returning final client stats keyed by client id.
    pub fn shutdown(mut self) -> HashMap<ClientId, ClientStats> {
        let mut stats = HashMap::new();
        for (id, handle) in self.clients.drain() {
            if let Some(node) = handle.stop() {
                if let Some(client) = node.as_any().downcast_ref::<PrestigeClient>() {
                    stats.insert(id, client.stats().clone());
                }
            }
        }
        for (_, handle) in self.servers.drain() {
            let _ = handle.stop();
        }
        stats
    }
}

/// Launches one server node over TCP, as the `prestige-node` binary does.
/// `behavior` is the server's Byzantine behaviour — [`ByzantineBehavior::Correct`]
/// for production nodes, an attack variant for adversarial deployments.
/// With a [`StoragePlan`] the server replays and attaches its WAL (the node's
/// directory under the plan root), so a killed process restarts from disk.
/// Returns the runtime handle; the process typically parks afterwards.
#[allow(clippy::too_many_arguments)]
pub fn launch_tcp_server(
    id: ServerId,
    config: ClusterConfig,
    registry: KeyRegistry,
    seed: u64,
    listen: SocketAddr,
    peers: HashMap<Actor, SocketAddr>,
    behavior: ByzantineBehavior,
    storage: Option<StoragePlan>,
) -> std::io::Result<NodeHandle<Message>> {
    let transport: TcpTransport<Message> =
        TcpTransport::bind(Actor::Server(id), TcpConfig::new(listen, peers))?;
    let verify_workers = config.verify_workers;
    let apply_workers = config.apply_workers;
    let mut server = PrestigeServer::with_behavior(id, config, registry, seed, behavior);
    if let Some(plan) = &storage {
        let dir = plan.server_dir(id);
        std::fs::create_dir_all(&dir)?;
        let (wal, records) =
            Wal::open(&dir, plan.options.clone()).map_err(std::io::Error::other)?;
        server.replay_wal(records);
        server.attach_storage(Box::new(wal));
    }
    let mut sources: Vec<Arc<dyn JobSource>> = Vec::new();
    if verify_workers > 0 {
        sources.push(server.spawn_verify_pool(verify_workers));
    }
    if apply_workers > 0 {
        sources.push(server.spawn_apply_pool(apply_workers));
    }
    let profile = Arc::new(LoopProfile::default());
    server.attach_profiler(Arc::clone(&profile));
    Ok(NodeHandle::spawn_instrumented(
        Box::new(server),
        Box::new(transport),
        seed,
        sources,
        Some(profile),
    ))
}

/// Launches one closed-loop client over TCP.
pub fn launch_tcp_client(
    id: ClientId,
    config: ClusterConfig,
    registry: &KeyRegistry,
    seed: u64,
    concurrency: usize,
    listen: SocketAddr,
    peers: HashMap<Actor, SocketAddr>,
) -> std::io::Result<NodeHandle<Message>> {
    let transport: TcpTransport<Message> =
        TcpTransport::bind(Actor::Client(id), TcpConfig::new(listen, peers))?;
    let cc = ClientConfig::new(
        id,
        config.replicas.clone(),
        config.payload_size,
        concurrency,
    )
    .with_refill_batch(default_refill_batch(concurrency));
    let client = PrestigeClient::new(cc, registry);
    Ok(NodeHandle::spawn(
        Box::new(client),
        Box::new(transport),
        seed,
    ))
}

/// A full PrestigeBFT cluster running over real TCP sockets **in this
/// process**: every node binds its own ephemeral loopback port and talks to
/// the others through [`TcpTransport`] — serialization, the event-driven
/// writer loop, reconnects, the lot. This is the seam the loopback-vs-TCP
/// integration tests and `peak_net --tcp` use to exercise the wire path that
/// `LocalCluster` (by design) skips.
pub struct TcpCluster {
    config: ClusterConfig,
    servers: HashMap<ServerId, NodeHandle<Message>>,
    clients: HashMap<ClientId, NodeHandle<Message>>,
    transport_stats: HashMap<Actor, Arc<TransportStats>>,
    /// Per-server event-loop stage profiles (empty with profiling off).
    profiles: HashMap<ServerId, Arc<LoopProfile>>,
}

impl TcpCluster {
    /// Launches `config.n()` servers and `clients` closed-loop clients over
    /// TCP on `127.0.0.1`. Ports are reserved by binding (then releasing)
    /// ephemeral listeners up front, so every node starts with the complete
    /// peer address map — the writer loops' reconnect machinery absorbs the
    /// startup window where some peers have not bound yet.
    pub fn launch(
        config: ClusterConfig,
        seed: u64,
        clients: u64,
        concurrency: usize,
    ) -> std::io::Result<Self> {
        Self::launch_configured(config, seed, clients, concurrency, true)
    }

    /// [`Self::launch`] with an explicit stage-profiling switch.
    pub fn launch_configured(
        config: ClusterConfig,
        seed: u64,
        clients: u64,
        concurrency: usize,
        profiling: bool,
    ) -> std::io::Result<Self> {
        let registry = KeyRegistry::new(seed, config.n(), clients);

        let mut addrs: HashMap<Actor, SocketAddr> = HashMap::new();
        {
            let mut reservations = Vec::new();
            for i in 0..config.n() {
                let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
                addrs.insert(Actor::Server(ServerId(i)), listener.local_addr()?);
                reservations.push(listener);
            }
            for c in 0..clients {
                let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
                addrs.insert(Actor::Client(ClientId(c)), listener.local_addr()?);
                reservations.push(listener);
            }
            // Dropping the reservations frees the ports for the real binds
            // below. The window where another process could steal one is
            // unavoidable without SO_REUSEPORT tricks and harmless in
            // practice: bind failure surfaces as an Err, not a hang.
        }
        let peers_for = |me: Actor| -> HashMap<Actor, SocketAddr> {
            addrs
                .iter()
                .filter(|(a, _)| **a != me)
                .map(|(a, sa)| (*a, *sa))
                .collect()
        };

        let mut servers = HashMap::new();
        let mut transport_stats = HashMap::new();
        let mut profiles = HashMap::new();
        for i in 0..config.n() {
            let id = ServerId(i);
            let me = Actor::Server(id);
            let transport: TcpTransport<Message> =
                TcpTransport::bind(me, TcpConfig::new(addrs[&me], peers_for(me)))?;
            transport_stats.insert(me, transport.stats());
            let mut server = PrestigeServer::with_behavior(
                id,
                config.clone(),
                registry.clone(),
                seed,
                ByzantineBehavior::Correct,
            );
            let mut sources: Vec<Arc<dyn JobSource>> = Vec::new();
            if config.verify_workers > 0 {
                sources.push(server.spawn_verify_pool(config.verify_workers));
            }
            if config.apply_workers > 0 {
                sources.push(server.spawn_apply_pool(config.apply_workers));
            }
            let profile = profiling.then(|| {
                let p = Arc::new(LoopProfile::default());
                server.attach_profiler(Arc::clone(&p));
                p
            });
            if let Some(p) = &profile {
                profiles.insert(id, Arc::clone(p));
            }
            servers.insert(
                id,
                NodeHandle::spawn_instrumented(
                    Box::new(server),
                    Box::new(transport),
                    seed,
                    sources,
                    profile,
                ),
            );
        }

        let mut client_handles = HashMap::new();
        for c in 0..clients {
            let id = ClientId(c);
            let me = Actor::Client(id);
            let transport: TcpTransport<Message> =
                TcpTransport::bind(me, TcpConfig::new(addrs[&me], peers_for(me)))?;
            transport_stats.insert(me, transport.stats());
            let cc = ClientConfig::new(
                id,
                config.replicas.clone(),
                config.payload_size,
                concurrency,
            )
            .with_refill_batch(default_refill_batch(concurrency));
            let client = PrestigeClient::new(cc, &registry);
            client_handles.insert(
                id,
                NodeHandle::spawn(Box::new(client), Box::new(transport), seed),
            );
        }

        Ok(TcpCluster {
            config,
            servers,
            clients: client_handles,
            transport_stats,
            profiles,
        })
    }

    /// The cluster configuration the nodes were launched with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Live server stats snapshot.
    pub fn server_stats(&self, id: ServerId) -> Option<ServerStats> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.stats().clone())
    }

    /// Live client stats snapshot.
    pub fn client_stats(&self, id: ClientId) -> Option<ClientStats> {
        self.clients
            .get(&id)?
            .inspect_as::<PrestigeClient, _, _>(|c| c.stats().clone())
    }

    /// Clears every client's latency accounting (benchmark warmup boundary).
    pub fn reset_client_latency(&self) {
        for handle in self.clients.values() {
            let _ = handle.inspect(|node| {
                if let Some(client) = node.as_any_mut().downcast_mut::<PrestigeClient>() {
                    client.reset_latency_stats();
                }
            });
        }
    }

    /// Total transactions confirmed across all clients.
    pub fn total_committed(&self) -> u64 {
        self.clients
            .keys()
            .filter_map(|&c| self.client_stats(c))
            .map(|s| s.committed_tx)
            .sum()
    }

    /// The current `(view, leader)` as observed by server `id`.
    pub fn view_of(&self, id: ServerId) -> Option<(View, ServerId)> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| (s.current_view(), s.current_leader()))
    }

    /// Snapshot of server `id`'s committed txBlock chain.
    pub fn committed_chain(&self, id: ServerId) -> Option<Vec<(u64, Digest)>> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.store().chain_digests())
    }

    /// Safety check across the given servers' committed logs
    /// ([`verify_no_fork_chains`]).
    pub fn verify_no_fork(&self, servers: &[ServerId]) -> Result<u64, String> {
        let mut chains = Vec::with_capacity(servers.len());
        for &id in servers {
            let chain = self
                .committed_chain(id)
                .ok_or_else(|| format!("server {id:?} did not answer the chain snapshot"))?;
            chains.push((id, chain));
        }
        verify_no_fork_chains(&chains)
    }

    /// Kills a server: its runtime stops and its transport shuts down, so
    /// its listener closes and established streams break — a process kill as
    /// seen from the rest of the cluster. Peers' writer loops park the dead
    /// address behind reconnect backoff.
    pub fn crash_server(&mut self, id: ServerId) {
        if let Some(handle) = self.servers.remove(&id) {
            let _ = handle.stop();
        }
    }

    /// Server ids currently alive.
    pub fn live_servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The transport counters of `actor`'s endpoint.
    pub fn transport_stats_of(&self, actor: Actor) -> Option<Arc<TransportStats>> {
        self.transport_stats.get(&actor).map(Arc::clone)
    }

    /// Server `id`'s event-loop stage profile (`None` with profiling off).
    pub fn loop_profile_of(&self, id: ServerId) -> Option<LoopSnapshot> {
        self.profiles.get(&id).map(|p| p.snapshot())
    }

    /// The cluster-wide event-loop stage profile: every server's counters
    /// merged. Empty (all zeros) with profiling off.
    pub fn loop_profile(&self) -> LoopSnapshot {
        let mut merged = LoopSnapshot::default();
        for profile in self.profiles.values() {
            merged.merge(&profile.snapshot());
        }
        merged
    }

    /// Cluster-wide transport counter sums — over TCP the writer-loop
    /// counters (`writev_calls`, `frames_coalesced`, …) are live.
    pub fn transport_totals(&self) -> TransportTotals {
        let mut totals = TransportTotals::default();
        for stats in self.transport_stats.values() {
            stats.accumulate_into(&mut totals);
        }
        totals
    }

    /// Polls `predicate` until it returns true or `timeout` elapses.
    pub fn wait_until(&self, timeout: Duration, mut predicate: impl FnMut(&Self) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if predicate(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops every node, returning final client stats keyed by client id.
    pub fn shutdown(mut self) -> HashMap<ClientId, ClientStats> {
        let mut stats = HashMap::new();
        for (id, handle) in self.clients.drain() {
            if let Some(node) = handle.stop() {
                if let Some(client) = node.as_any().downcast_ref::<PrestigeClient>() {
                    stats.insert(id, client.stats().clone());
                }
            }
        }
        for (_, handle) in self.servers.drain() {
            let _ = handle.stop();
        }
        stats
    }
}
