//! Cluster launcher: brings up a full PrestigeBFT cluster (servers + closed
//! loop clients) on real runtimes, over either transport.
//!
//! This is the net-runtime analogue of building a `Simulation` by hand: one
//! call wires key registries, transports, and node runtimes together. The
//! loopback variant is what integration tests and the example use; the TCP
//! variant backs multi-process deployments via the `prestige-node` binary
//! (which launches exactly one node per process from a TOML config).

use crate::runtime::NodeHandle;
use crate::tcp::{TcpConfig, TcpTransport};
use crate::transport::LoopbackNet;
use prestige_core::{ClientConfig, ClientStats, PrestigeClient, PrestigeServer, ServerStats};
use prestige_crypto::KeyRegistry;
use prestige_types::{Actor, ClientId, ClusterConfig, Message, ServerId, View};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A PrestigeBFT cluster running on real node runtimes in this process.
pub struct LocalCluster {
    config: ClusterConfig,
    net: LoopbackNet<Message>,
    servers: HashMap<ServerId, NodeHandle<Message>>,
    clients: HashMap<ClientId, NodeHandle<Message>>,
}

impl LocalCluster {
    /// Launches `config.n()` servers and `clients` closed-loop clients (each
    /// keeping `concurrency` proposals in flight) over a loopback transport.
    pub fn launch(config: ClusterConfig, seed: u64, clients: u64, concurrency: usize) -> Self {
        let registry = KeyRegistry::new(seed, config.n(), clients);
        let net: LoopbackNet<Message> = LoopbackNet::new();

        let mut servers = HashMap::new();
        for i in 0..config.n() {
            let id = ServerId(i);
            let mut server = PrestigeServer::new(id, config.clone(), registry.clone(), seed);
            // `verify_workers > 0` moves signature/QC checks off the protocol
            // loop; the runtime polls the pool and feeds verdicts back as
            // events.
            let pool = (config.verify_workers > 0)
                .then(|| server.spawn_verify_pool(config.verify_workers));
            let endpoint = net.endpoint(Actor::Server(id));
            servers.insert(
                id,
                NodeHandle::spawn_with_pool(Box::new(server), Box::new(endpoint), seed, pool),
            );
        }

        let mut client_handles = HashMap::new();
        for c in 0..clients {
            let id = ClientId(c);
            let cc = ClientConfig::new(
                id,
                config.replicas.clone(),
                config.payload_size,
                concurrency,
            );
            let client = PrestigeClient::new(cc, &registry);
            let endpoint = net.endpoint(Actor::Client(id));
            client_handles.insert(
                id,
                NodeHandle::spawn(Box::new(client), Box::new(endpoint), seed),
            );
        }

        LocalCluster {
            config,
            net,
            servers,
            clients: client_handles,
        }
    }

    /// The cluster configuration the nodes were launched with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The underlying loopback fabric (for advanced fault injection).
    pub fn net(&self) -> &LoopbackNet<Message> {
        &self.net
    }

    /// Live server stats snapshot.
    pub fn server_stats(&self, id: ServerId) -> Option<ServerStats> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| s.stats().clone())
    }

    /// Live client stats snapshot.
    pub fn client_stats(&self, id: ClientId) -> Option<ClientStats> {
        self.clients
            .get(&id)?
            .inspect_as::<PrestigeClient, _, _>(|c| c.stats().clone())
    }

    /// Clears every client's latency accounting (benchmark warmup boundary),
    /// so subsequent percentile reads cover only the measurement window.
    pub fn reset_client_latency(&self) {
        for handle in self.clients.values() {
            let _ = handle.inspect(|node| {
                if let Some(client) = node.as_any_mut().downcast_mut::<PrestigeClient>() {
                    client.reset_latency_stats();
                }
            });
        }
    }

    /// Total transactions confirmed across all clients.
    pub fn total_committed(&self) -> u64 {
        self.clients
            .keys()
            .filter_map(|&c| self.client_stats(c))
            .map(|s| s.committed_tx)
            .sum()
    }

    /// The current `(view, leader)` as observed by server `id`.
    pub fn view_of(&self, id: ServerId) -> Option<(View, ServerId)> {
        self.servers
            .get(&id)?
            .inspect_as::<PrestigeServer, _, _>(|s| (s.current_view(), s.current_leader()))
    }

    /// Crashes a server abruptly: its runtime thread stops and its endpoint
    /// deregisters, so all traffic toward it is dropped — exactly what a
    /// killed process looks like to the rest of the cluster.
    pub fn crash_server(&mut self, id: ServerId) {
        self.net.disconnect(Actor::Server(id));
        if let Some(handle) = self.servers.remove(&id) {
            let _ = handle.stop();
        }
    }

    /// Server ids currently alive.
    pub fn live_servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Polls `predicate` against the cluster until it returns true or
    /// `timeout` elapses. Returns whether the predicate succeeded.
    pub fn wait_until(&self, timeout: Duration, mut predicate: impl FnMut(&Self) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if predicate(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops every node, returning final client stats keyed by client id.
    pub fn shutdown(mut self) -> HashMap<ClientId, ClientStats> {
        let mut stats = HashMap::new();
        for (id, handle) in self.clients.drain() {
            if let Some(node) = handle.stop() {
                if let Some(client) = node.as_any().downcast_ref::<PrestigeClient>() {
                    stats.insert(id, client.stats().clone());
                }
            }
        }
        for (_, handle) in self.servers.drain() {
            let _ = handle.stop();
        }
        stats
    }
}

/// Launches one server node over TCP, as the `prestige-node` binary does.
/// Returns the runtime handle; the process typically parks afterwards.
pub fn launch_tcp_server(
    id: ServerId,
    config: ClusterConfig,
    registry: KeyRegistry,
    seed: u64,
    listen: SocketAddr,
    peers: HashMap<Actor, SocketAddr>,
) -> std::io::Result<NodeHandle<Message>> {
    let transport: TcpTransport<Message> =
        TcpTransport::bind(Actor::Server(id), TcpConfig::new(listen, peers))?;
    let verify_workers = config.verify_workers;
    let mut server = PrestigeServer::new(id, config, registry, seed);
    let pool = (verify_workers > 0).then(|| server.spawn_verify_pool(verify_workers));
    Ok(NodeHandle::spawn_with_pool(
        Box::new(server),
        Box::new(transport),
        seed,
        pool,
    ))
}

/// Launches one closed-loop client over TCP.
pub fn launch_tcp_client(
    id: ClientId,
    config: ClusterConfig,
    registry: &KeyRegistry,
    seed: u64,
    concurrency: usize,
    listen: SocketAddr,
    peers: HashMap<Actor, SocketAddr>,
) -> std::io::Result<NodeHandle<Message>> {
    let transport: TcpTransport<Message> =
        TcpTransport::bind(Actor::Client(id), TcpConfig::new(listen, peers))?;
    let cc = ClientConfig::new(
        id,
        config.replicas.clone(),
        config.payload_size,
        concurrency,
    );
    let client = PrestigeClient::new(cc, registry);
    Ok(NodeHandle::spawn(
        Box::new(client),
        Box::new(transport),
        seed,
    ))
}
