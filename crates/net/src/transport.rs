//! The transport abstraction and the in-process loopback implementation.
//!
//! A [`Transport`] moves protocol messages between [`Actor`]s. The node
//! runtime is written against this trait only, so the same cluster code runs
//! over the channel-based [`LoopbackNet`] (fast, in-process, used by
//! integration tests and CI) and the TCP transport in [`crate::tcp`]
//! (real sockets, used by the `prestige-node` binary).

use prestige_types::Actor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default per-endpoint inbound queue capacity (messages). When a queue is
/// full the sender drops the message — BFT protocols are loss-tolerant by
/// construction (clients re-propose and complain; followers sync up).
pub const DEFAULT_QUEUE_CAPACITY: usize = 16 * 1024;

/// Counters shared between a transport and its observers.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Messages handed to the transport for delivery.
    pub sent: AtomicU64,
    /// Messages received and handed to the node.
    pub received: AtomicU64,
    /// Messages dropped because the destination queue was full
    /// (backpressure) or the destination was unreachable.
    pub dropped: AtomicU64,
}

impl TransportStats {
    /// Snapshot of `(sent, received, dropped)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.sent.load(Ordering::Relaxed),
            self.received.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

/// A bidirectional message channel binding one actor to the rest of the
/// cluster.
pub trait Transport<M>: Send {
    /// The actor this endpoint belongs to.
    fn me(&self) -> Actor;

    /// Queues `message` for delivery to `to`. Never blocks the caller; on
    /// backpressure or unreachable destination the message is dropped and
    /// counted.
    fn send(&mut self, to: Actor, message: M);

    /// Waits up to `timeout` for an inbound message.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<(Actor, M)>;

    /// Shared delivery counters.
    fn stats(&self) -> Arc<TransportStats>;

    /// Releases resources and deregisters from the network. Called once when
    /// the driving runtime shuts down.
    fn shutdown(&mut self) {}
}

type Registry<M> = Arc<Mutex<HashMap<Actor, SyncSender<(Actor, M)>>>>;

/// An in-process cluster fabric: every endpoint is an mpsc pair registered in
/// a shared map. Message payloads move by value — no serialization — which
/// keeps loopback clusters fast enough for CI while exercising the full
/// runtime (threads, timers, backpressure, crash = deregistration).
pub struct LoopbackNet<M> {
    registry: Registry<M>,
    capacity: usize,
}

impl<M> Clone for LoopbackNet<M> {
    fn clone(&self) -> Self {
        LoopbackNet {
            registry: Arc::clone(&self.registry),
            capacity: self.capacity,
        }
    }
}

impl<M: Send + 'static> LoopbackNet<M> {
    /// A fabric whose endpoints buffer up to [`DEFAULT_QUEUE_CAPACITY`]
    /// messages.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// A fabric with a custom per-endpoint queue capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        LoopbackNet {
            registry: Arc::new(Mutex::new(HashMap::new())),
            capacity: capacity.max(1),
        }
    }

    /// Creates and registers the endpoint for `me`. Panics if the actor
    /// already has a live endpoint.
    pub fn endpoint(&self, me: Actor) -> LoopbackTransport<M> {
        let (tx, rx) = sync_channel(self.capacity);
        let previous = self.registry.lock().expect("registry lock").insert(me, tx);
        assert!(previous.is_none(), "duplicate loopback endpoint for {me}");
        LoopbackTransport {
            me,
            registry: Arc::clone(&self.registry),
            rx,
            stats: Arc::new(TransportStats::default()),
        }
    }

    /// Abruptly disconnects an actor (crash injection): its endpoint is
    /// removed so all traffic towards it is dropped at the senders.
    pub fn disconnect(&self, actor: Actor) {
        self.registry.lock().expect("registry lock").remove(&actor);
    }

    /// Actors currently registered.
    pub fn connected(&self) -> Vec<Actor> {
        self.registry
            .lock()
            .expect("registry lock")
            .keys()
            .copied()
            .collect()
    }
}

impl<M: Send + 'static> Default for LoopbackNet<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// One actor's endpoint on a [`LoopbackNet`].
pub struct LoopbackTransport<M> {
    me: Actor,
    registry: Registry<M>,
    rx: Receiver<(Actor, M)>,
    stats: Arc<TransportStats>,
}

impl<M: Send + 'static> Transport<M> for LoopbackTransport<M> {
    fn me(&self) -> Actor {
        self.me
    }

    fn send(&mut self, to: Actor, message: M) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let sender = {
            let registry = self.registry.lock().expect("registry lock");
            registry.get(&to).cloned()
        };
        match sender {
            Some(tx) => {
                if tx.try_send((self.me, message)).is_err() {
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(Actor, M)> {
        match self.rx.recv_timeout(timeout) {
            Ok(delivery) => {
                self.stats.received.fetch_add(1, Ordering::Relaxed);
                Some(delivery)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    fn shutdown(&mut self) {
        self.registry
            .lock()
            .expect("registry lock")
            .remove(&self.me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::ServerId;

    fn server(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    #[test]
    fn loopback_delivers_between_endpoints() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        let mut b = net.endpoint(server(1));
        a.send(server(1), 42);
        let (from, v) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, server(0));
        assert_eq!(v, 42);
    }

    #[test]
    fn send_to_unknown_actor_is_counted_as_drop() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        a.send(server(9), 1);
        assert_eq!(a.stats().snapshot(), (1, 0, 1));
    }

    #[test]
    fn backpressure_drops_instead_of_blocking() {
        let net: LoopbackNet<u64> = LoopbackNet::with_capacity(2);
        let mut a = net.endpoint(server(0));
        let _b = net.endpoint(server(1));
        for i in 0..5 {
            a.send(server(1), i);
        }
        let (sent, _, dropped) = a.stats().snapshot();
        assert_eq!(sent, 5);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn disconnect_simulates_crash() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        let _b = net.endpoint(server(1));
        net.disconnect(server(1));
        a.send(server(1), 7);
        assert_eq!(a.stats().snapshot().2, 1);
        assert_eq!(net.connected(), vec![server(0)]);
    }

    #[test]
    fn shutdown_deregisters() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        a.shutdown();
        assert!(net.connected().is_empty());
        // Endpoint slot can be reused after shutdown (restart).
        let _a2 = net.endpoint(server(0));
    }
}
