//! The transport abstraction and the in-process loopback implementation.
//!
//! A [`Transport`] moves protocol messages between [`Actor`]s. The node
//! runtime is written against this trait only, so the same cluster code runs
//! over the channel-based [`LoopbackNet`] (fast, in-process, used by
//! integration tests and CI) and the TCP transport in [`crate::tcp`]
//! (real sockets, used by the `prestige-node` binary).

use prestige_types::Actor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default per-endpoint inbound queue capacity (messages). When a queue is
/// full the sender drops the message — BFT protocols are loss-tolerant by
/// construction (clients re-propose and complain; followers sync up).
pub const DEFAULT_QUEUE_CAPACITY: usize = 16 * 1024;

/// Minimum interval between drop warnings emitted by one transport.
const DROP_WARN_INTERVAL: Duration = Duration::from_secs(1);

/// Counters shared between a transport and its observers.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Messages handed to the transport for delivery.
    pub sent: AtomicU64,
    /// Messages received and handed to the node.
    pub received: AtomicU64,
    /// Messages dropped because the destination queue was full
    /// (backpressure) or the destination was unreachable.
    pub dropped: AtomicU64,
    /// Vectored writes issued by the TCP writer loop (one per
    /// `write_vectored` syscall). Zero on non-TCP transports.
    pub writev_calls: AtomicU64,
    /// Frames that shared a vectored write with at least one other frame —
    /// the payoff of coalescing (frames written alone count in
    /// `writev_calls` only).
    pub frames_coalesced: AtomicU64,
    /// Writer-loop flushes that found exactly one queued frame (idle path:
    /// the frame went out immediately, protecting p50 latency).
    pub flushes_idle: AtomicU64,
    /// Writer-loop flushes that coalesced a multi-frame backlog (loaded
    /// path: many frames per syscall, protecting throughput).
    pub flushes_full: AtomicU64,
    /// Per-peer breakdown of outbound drops (messages we failed to deliver
    /// *to* a peer), so operators can spot a single slow or dead peer.
    per_peer_dropped: Mutex<HashMap<Actor, u64>>,
    /// Per-peer breakdown of inbound drops (messages *from* a peer that the
    /// local node shed under backpressure) — kept separate from outbound
    /// drops so "S1 is unreachable" and "we are overloaded by S1's traffic"
    /// never blur into one number.
    per_peer_inbound_dropped: Mutex<HashMap<Actor, u64>>,
    /// Timestamp of the last emitted drop warning (rate limiting).
    last_drop_warn: Mutex<Option<Instant>>,
}

impl TransportStats {
    /// Snapshot of `(sent, received, dropped)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.sent.load(Ordering::Relaxed),
            self.received.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the TCP writer-loop counters:
    /// `(writev_calls, frames_coalesced, flushes_idle, flushes_full)`.
    pub fn writer_snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.writev_calls.load(Ordering::Relaxed),
            self.frames_coalesced.load(Ordering::Relaxed),
            self.flushes_idle.load(Ordering::Relaxed),
            self.flushes_full.load(Ordering::Relaxed),
        )
    }

    /// Records an outbound drop attributed to `peer` (a message we failed to
    /// deliver to it) and returns the peer's new drop count. Never silent:
    /// callers pair this with [`Self::should_warn`] to log at a bounded rate.
    pub fn note_drop(&self, peer: Actor) -> u64 {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        let mut map = self.per_peer_dropped.lock().expect("drop map lock");
        let entry = map.entry(peer).or_insert(0);
        *entry += 1;
        *entry
    }

    /// Records an inbound drop attributed to `peer` (a message it sent that
    /// the local node shed) and returns the peer's new inbound drop count.
    pub fn note_inbound_drop(&self, peer: Actor) -> u64 {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        let mut map = self.per_peer_inbound_dropped.lock().expect("drop map lock");
        let entry = map.entry(peer).or_insert(0);
        *entry += 1;
        *entry
    }

    /// Messages dropped towards `peer` so far (outbound).
    pub fn dropped_to(&self, peer: Actor) -> u64 {
        self.per_peer_dropped
            .lock()
            .expect("drop map lock")
            .get(&peer)
            .copied()
            .unwrap_or(0)
    }

    /// Messages from `peer` shed locally so far (inbound).
    pub fn dropped_from(&self, peer: Actor) -> u64 {
        self.per_peer_inbound_dropped
            .lock()
            .expect("drop map lock")
            .get(&peer)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of per-peer outbound drop counts, sorted by peer.
    pub fn drops_by_peer(&self) -> Vec<(Actor, u64)> {
        let mut drops: Vec<(Actor, u64)> = self
            .per_peer_dropped
            .lock()
            .expect("drop map lock")
            .iter()
            .map(|(a, c)| (*a, *c))
            .collect();
        drops.sort();
        drops
    }

    /// Snapshot of per-peer inbound drop counts, sorted by peer.
    pub fn inbound_drops_by_peer(&self) -> Vec<(Actor, u64)> {
        let mut drops: Vec<(Actor, u64)> = self
            .per_peer_inbound_dropped
            .lock()
            .expect("drop map lock")
            .iter()
            .map(|(a, c)| (*a, *c))
            .collect();
        drops.sort();
        drops
    }

    /// Accumulates this endpoint's counters into `totals` (for
    /// cluster-wide transport reports).
    pub fn accumulate_into(&self, totals: &mut TransportTotals) {
        let (sent, received, dropped) = self.snapshot();
        let (writev_calls, frames_coalesced, flushes_idle, flushes_full) = self.writer_snapshot();
        totals.sent += sent;
        totals.received += received;
        totals.dropped += dropped;
        totals.writev_calls += writev_calls;
        totals.frames_coalesced += frames_coalesced;
        totals.flushes_idle += flushes_idle;
        totals.flushes_full += flushes_full;
    }

    /// True at most once per drop-warn interval (one second): gates
    /// drop-warning log lines so a hot loop losing thousands of messages per
    /// second emits a bounded number of them.
    pub fn should_warn(&self) -> bool {
        let mut last = self.last_drop_warn.lock().expect("warn gate lock");
        match *last {
            Some(at) if at.elapsed() < DROP_WARN_INTERVAL => false,
            _ => {
                *last = Some(Instant::now());
                true
            }
        }
    }
}

/// Cluster-wide sums of [`TransportStats`] counters, accumulated across every
/// node's endpoint with [`TransportStats::accumulate_into`]. Benchmark and
/// chaos reports serialize this to show both delivery health (sent /
/// received / dropped) and how the TCP writer behaved (vectored writes,
/// coalescing, idle-vs-full flushes). On loopback clusters the writer
/// counters stay zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportTotals {
    /// Messages handed to transports for delivery.
    pub sent: u64,
    /// Messages received and handed to nodes.
    pub received: u64,
    /// Messages dropped (backpressure or unreachable destination).
    pub dropped: u64,
    /// `write_vectored` syscalls issued by TCP writer loops.
    pub writev_calls: u64,
    /// Frames that shared a vectored write with at least one other frame.
    pub frames_coalesced: u64,
    /// Writer flushes that found a single queued frame (idle path).
    pub flushes_idle: u64,
    /// Writer flushes that coalesced a multi-frame backlog (loaded path).
    pub flushes_full: u64,
}

/// Logs one rate-limited warning about messages dropped towards `peer`.
pub(crate) fn warn_drop(stats: &TransportStats, me: Actor, peer: Actor, reason: &str, total: u64) {
    if stats.should_warn() {
        eprintln!(
            "[prestige-net] {me}: dropping message to {peer} ({reason}); {total} total drops to this peer so far"
        );
    }
}

/// Logs one rate-limited warning about an inbound message from `peer` shed
/// by the local node `me`.
pub(crate) fn warn_inbound_drop(
    stats: &TransportStats,
    me: Actor,
    peer: Actor,
    reason: &str,
    total: u64,
) {
    if stats.should_warn() {
        eprintln!(
            "[prestige-net] {me}: shedding inbound message from {peer} ({reason}); {total} total inbound drops for this peer so far"
        );
    }
}

/// A bidirectional message channel binding one actor to the rest of the
/// cluster.
///
/// The node runtime drives a `Process` against this trait only, so the same
/// protocol code runs over loopback channels, TCP sockets, or a
/// chaos-wrapped transport injecting partitions and loss
/// ([`ChaosTransport`](crate::chaos::ChaosTransport)).
///
/// # Examples
///
/// ```
/// use prestige_net::transport::{LoopbackNet, Transport};
/// use prestige_types::{Actor, ServerId};
/// use std::time::Duration;
///
/// let net: LoopbackNet<&'static str> = LoopbackNet::new();
/// let s0 = Actor::Server(ServerId(0));
/// let s1 = Actor::Server(ServerId(1));
/// let mut a = net.endpoint(s0);
/// let mut b = net.endpoint(s1);
///
/// a.send(s1, "ping");
/// let (from, message) = b.recv_timeout(Duration::from_secs(1)).unwrap();
/// assert_eq!((from, message), (s0, "ping"));
///
/// // Delivery is counted on both sides; sends never block, they drop
/// // under backpressure (and the drop is counted too).
/// assert_eq!(a.stats().snapshot(), (1, 0, 0)); // (sent, received, dropped)
/// assert_eq!(b.stats().snapshot(), (0, 1, 0));
/// ```
pub trait Transport<M>: Send {
    /// The actor this endpoint belongs to.
    fn me(&self) -> Actor;

    /// Queues `message` for delivery to `to`. Never blocks the caller; on
    /// backpressure or unreachable destination the message is dropped and
    /// counted.
    fn send(&mut self, to: Actor, message: M);

    /// Queues one message for delivery to every actor in `recipients`.
    ///
    /// The default implementation clones the payload per recipient (correct
    /// for in-process transports, where a clone of an `Arc`-shared payload is
    /// a refcount bump). Serializing transports override it to encode the
    /// frame exactly once and hand the shared bytes to every per-peer writer.
    fn broadcast(&mut self, recipients: &[Actor], message: M)
    where
        M: Clone,
    {
        let mut recipients = recipients.iter();
        let last = recipients.next_back();
        for &to in recipients {
            self.send(to, message.clone());
        }
        if let Some(&to) = last {
            self.send(to, message);
        }
    }

    /// Waits up to `timeout` for an inbound message.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<(Actor, M)>;

    /// Shared delivery counters.
    fn stats(&self) -> Arc<TransportStats>;

    /// Releases resources and deregisters from the network. Called once when
    /// the driving runtime shuts down.
    fn shutdown(&mut self) {}
}

type Registry<M> = Arc<Mutex<HashMap<Actor, SyncSender<(Actor, M)>>>>;

/// An in-process cluster fabric: every endpoint is an mpsc pair registered in
/// a shared map. Message payloads move by value — no serialization — which
/// keeps loopback clusters fast enough for CI while exercising the full
/// runtime (threads, timers, backpressure, crash = deregistration).
pub struct LoopbackNet<M> {
    registry: Registry<M>,
    capacity: usize,
}

impl<M> Clone for LoopbackNet<M> {
    fn clone(&self) -> Self {
        LoopbackNet {
            registry: Arc::clone(&self.registry),
            capacity: self.capacity,
        }
    }
}

impl<M: Send + 'static> LoopbackNet<M> {
    /// A fabric whose endpoints buffer up to [`DEFAULT_QUEUE_CAPACITY`]
    /// messages.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// A fabric with a custom per-endpoint queue capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        LoopbackNet {
            registry: Arc::new(Mutex::new(HashMap::new())),
            capacity: capacity.max(1),
        }
    }

    /// Creates and registers the endpoint for `me`. Panics if the actor
    /// already has a live endpoint.
    pub fn endpoint(&self, me: Actor) -> LoopbackTransport<M> {
        let (tx, rx) = sync_channel(self.capacity);
        let previous = self.registry.lock().expect("registry lock").insert(me, tx);
        assert!(previous.is_none(), "duplicate loopback endpoint for {me}");
        LoopbackTransport {
            me,
            registry: Arc::clone(&self.registry),
            rx,
            stats: Arc::new(TransportStats::default()),
        }
    }

    /// Abruptly disconnects an actor (crash injection): its endpoint is
    /// removed so all traffic towards it is dropped at the senders.
    pub fn disconnect(&self, actor: Actor) {
        self.registry.lock().expect("registry lock").remove(&actor);
    }

    /// Actors currently registered.
    pub fn connected(&self) -> Vec<Actor> {
        self.registry
            .lock()
            .expect("registry lock")
            .keys()
            .copied()
            .collect()
    }
}

impl<M: Send + 'static> Default for LoopbackNet<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// One actor's endpoint on a [`LoopbackNet`].
pub struct LoopbackTransport<M> {
    me: Actor,
    registry: Registry<M>,
    rx: Receiver<(Actor, M)>,
    stats: Arc<TransportStats>,
}

impl<M: Send + 'static> Transport<M> for LoopbackTransport<M> {
    fn me(&self) -> Actor {
        self.me
    }

    fn send(&mut self, to: Actor, message: M) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let sender = {
            let registry = self.registry.lock().expect("registry lock");
            registry.get(&to).cloned()
        };
        match sender {
            Some(tx) => {
                if tx.try_send((self.me, message)).is_err() {
                    let total = self.stats.note_drop(to);
                    warn_drop(&self.stats, self.me, to, "queue full", total);
                }
            }
            None => {
                let total = self.stats.note_drop(to);
                warn_drop(&self.stats, self.me, to, "unreachable", total);
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(Actor, M)> {
        match self.rx.recv_timeout(timeout) {
            Ok(delivery) => {
                self.stats.received.fetch_add(1, Ordering::Relaxed);
                Some(delivery)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    fn shutdown(&mut self) {
        self.registry
            .lock()
            .expect("registry lock")
            .remove(&self.me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::ServerId;

    fn server(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    #[test]
    fn loopback_delivers_between_endpoints() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        let mut b = net.endpoint(server(1));
        a.send(server(1), 42);
        let (from, v) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, server(0));
        assert_eq!(v, 42);
    }

    #[test]
    fn send_to_unknown_actor_is_counted_as_drop() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        a.send(server(9), 1);
        assert_eq!(a.stats().snapshot(), (1, 0, 1));
    }

    #[test]
    fn backpressure_drops_instead_of_blocking() {
        let net: LoopbackNet<u64> = LoopbackNet::with_capacity(2);
        let mut a = net.endpoint(server(0));
        let _b = net.endpoint(server(1));
        for i in 0..5 {
            a.send(server(1), i);
        }
        let (sent, _, dropped) = a.stats().snapshot();
        assert_eq!(sent, 5);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn drops_are_attributed_per_peer() {
        let net: LoopbackNet<u64> = LoopbackNet::with_capacity(1);
        let mut a = net.endpoint(server(0));
        let _b = net.endpoint(server(1));
        // server(9) does not exist; server(1)'s queue holds one message.
        a.send(server(9), 1);
        a.send(server(9), 2);
        a.send(server(1), 3);
        a.send(server(1), 4);
        a.send(server(1), 5);
        let stats = a.stats();
        assert_eq!(stats.dropped_to(server(9)), 2);
        assert_eq!(stats.dropped_to(server(1)), 2);
        assert_eq!(stats.dropped_to(server(0)), 0);
        assert_eq!(stats.drops_by_peer(), vec![(server(1), 2), (server(9), 2)]);
        assert_eq!(stats.snapshot().2, 4, "aggregate counter stays in sync");
    }

    #[test]
    fn inbound_and_outbound_drops_are_tracked_separately() {
        let stats = TransportStats::default();
        assert_eq!(stats.note_drop(server(1)), 1);
        assert_eq!(stats.note_inbound_drop(server(1)), 1);
        assert_eq!(stats.note_inbound_drop(server(1)), 2);
        assert_eq!(stats.dropped_to(server(1)), 1);
        assert_eq!(stats.dropped_from(server(1)), 2);
        assert_eq!(stats.drops_by_peer(), vec![(server(1), 1)]);
        assert_eq!(stats.inbound_drops_by_peer(), vec![(server(1), 2)]);
        assert_eq!(stats.snapshot().2, 3, "aggregate covers both directions");
    }

    #[test]
    fn drop_warnings_are_rate_limited() {
        let stats = TransportStats::default();
        assert!(stats.should_warn(), "first warning passes");
        assert!(!stats.should_warn(), "second within the interval is gated");
    }

    #[test]
    fn default_broadcast_delivers_to_every_recipient() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        let mut b = net.endpoint(server(1));
        let mut c = net.endpoint(server(2));
        a.broadcast(&[server(1), server(2)], 99);
        let (_, vb) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        let (_, vc) = c.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((vb, vc), (99, 99));
        assert_eq!(a.stats().snapshot().0, 2, "one send counted per recipient");
    }

    #[test]
    fn disconnect_simulates_crash() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        let _b = net.endpoint(server(1));
        net.disconnect(server(1));
        a.send(server(1), 7);
        assert_eq!(a.stats().snapshot().2, 1);
        assert_eq!(net.connected(), vec![server(0)]);
    }

    #[test]
    fn shutdown_deregisters() {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = net.endpoint(server(0));
        a.shutdown();
        assert!(net.connected().is_empty());
        // Endpoint slot can be reused after shutdown (restart).
        let _a2 = net.endpoint(server(0));
    }
}
