//! `prestige-node` — run one PrestigeBFT node (server or client) over TCP.
//!
//! One TOML file describes the whole cluster; each process picks its identity
//! with `--as`:
//!
//! ```text
//! prestige-node --config cluster.toml --as s0 &
//! prestige-node --config cluster.toml --as s1 &
//! prestige-node --config cluster.toml --as s2 &
//! prestige-node --config cluster.toml --as s3 &
//! prestige-node --config cluster.toml --as c0        # client, reports stats
//! ```
//!
//! Servers run until killed (or `workload.duration_s`). Clients run the
//! closed-loop workload for `workload.duration_s` seconds (default 30), then
//! print a throughput/latency report and exit.

use prestige_core::{PrestigeClient, PrestigeServer};
use prestige_crypto::KeyRegistry;
use prestige_metrics::Table;
use prestige_net::{launch_tcp_client, launch_tcp_server, NodeConfig, NodeRole};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("prestige-node: {message}");
            eprintln!(
                "usage: prestige-node --config <cluster.toml> [--as <sN|cN>] [--duration <secs>]"
            );
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config_path: Option<&str> = None;
    let mut role_override: Option<&str> = None;
    let mut duration_override: Option<f64> = None;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                config_path = Some(args.get(i + 1).ok_or("--config needs a path")?);
                i += 2;
            }
            "--as" => {
                role_override = Some(args.get(i + 1).ok_or("--as needs a node name")?);
                i += 2;
            }
            "--duration" => {
                let raw = args.get(i + 1).ok_or("--duration needs seconds")?;
                duration_override = Some(raw.parse().map_err(|_| format!("bad duration `{raw}`"))?);
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let path = config_path.ok_or("missing --config")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut config =
        NodeConfig::from_toml(&text, role_override).map_err(|e| format!("parsing {path}: {e}"))?;
    if duration_override.is_some() {
        config.duration_s = duration_override;
    }

    let registry = KeyRegistry::new(config.seed, config.cluster.n(), config.clients);
    println!(
        "prestige-node: starting {:?} on {} ({} peers, n={}, seed={})",
        config.role,
        config.listen,
        config.peers.len(),
        config.cluster.n(),
        config.seed
    );

    match config.role {
        NodeRole::Server(id) => {
            let behavior = config.behavior();
            if behavior.is_faulty() {
                eprintln!(
                    "prestige-node: server {id:?} runs ADVERSARIALLY as {behavior:?} \
                     (from the [faults] section)"
                );
            }
            if let Some(plan) = &config.storage {
                println!(
                    "prestige-node: durable WAL at {}",
                    plan.server_dir(id).display()
                );
            }
            let handle = launch_tcp_server(
                id,
                config.cluster.clone(),
                registry,
                config.seed,
                config.listen,
                config.peers.clone(),
                behavior,
                config.storage.clone(),
            )
            .map_err(|e| format!("binding {}: {e}", config.listen))?;

            match config.duration_s {
                Some(secs) => std::thread::sleep(Duration::from_secs_f64(secs)),
                None => loop {
                    std::thread::sleep(Duration::from_secs(3600));
                },
            }
            if let Some(stats) = handle.inspect_as::<PrestigeServer, _, _>(|s| s.stats().clone()) {
                println!(
                    "server {id:?}: committed_tx={} elections_won={}",
                    stats.committed_tx, stats.elections_won
                );
            }
            let _ = handle.stop();
        }
        NodeRole::Client(id) => {
            let handle = launch_tcp_client(
                id,
                config.cluster.clone(),
                &registry,
                config.seed,
                config.concurrency,
                config.listen,
                config.peers.clone(),
            )
            .map_err(|e| format!("binding {}: {e}", config.listen))?;

            let secs = config.duration_s.unwrap_or(30.0);
            std::thread::sleep(Duration::from_secs_f64(secs));
            let stats = handle
                .inspect_as::<PrestigeClient, _, _>(|c| c.stats().clone())
                .ok_or("client runtime did not answer")?;
            let _ = handle.stop();

            let mut table = Table::new(
                format!("prestige-node client {id:?} ({secs:.0} s run)"),
                &["metric", "value"],
            );
            table.push_row(vec!["committed tx".into(), stats.committed_tx.to_string()]);
            table.push_row(vec![
                "throughput (tx/s)".into(),
                format!("{:.1}", stats.committed_tx as f64 / secs),
            ]);
            table.push_row(vec![
                "mean latency (ms)".into(),
                format!("{:.2}", stats.mean_latency_ms()),
            ]);
            table.push_row(vec![
                "p50 latency (ms)".into(),
                format!("{:.2}", stats.percentile_latency_ms(50.0)),
            ]);
            table.push_row(vec![
                "p99 latency (ms)".into(),
                format!("{:.2}", stats.percentile_latency_ms(99.0)),
            ]);
            table.push_row(vec![
                "complaints sent".into(),
                stats.complaints_sent.to_string(),
            ]);
            println!("{}", table.to_text());
        }
    }
    Ok(())
}
