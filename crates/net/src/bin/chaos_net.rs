//! `chaos_net` — run one of the paper's Byzantine attack scenarios (F1–F4,
//! S1/S2) against a *real* PrestigeBFT cluster, composed with network chaos
//! (delay, loss, partitions), and assert safety + recovery.
//!
//! The scenario is declarative: a mini-TOML file (same dialect as
//! `prestige-node`'s cluster config) names the cluster shape, the fault plan
//! (reusing `prestige_workloads::FaultPlan`), the link chaos, an optional
//! timed partition with scheduled heal, an optional crash-restart (`[restart]`
//! — kill a server, optionally tear its WAL tail, restart it from disk; needs
//! the `[storage]` durable plane), and the assertions. The runner
//! launches the cluster on real node runtimes, drives the timeline, samples
//! per-node progress, and writes a JSON report:
//!
//! ```text
//! cargo run --release -p prestige-net --bin chaos_net -- \
//!     --scenario scenarios/f4_s1_partition.toml --out CHAOS_report.json
//! ```
//!
//! Exit status is non-zero when an assertion fails:
//!
//! * **no-fork** — every pair of correct replicas agrees on the block digest
//!   at every sequence number both have committed (digest chaining makes the
//!   whole prefix identical);
//! * **recovery** — committed throughput over the trailing window is above
//!   the configured floor, and the post-heal commit count reaches the
//!   configured minimum.
//!
//! See `docs/ATTACKS.md` for the scenario vocabulary and the mapping to the
//! paper's experiments.

use prestige_core::LoopStage;
use prestige_metrics::Json;
use prestige_net::cluster::{LocalCluster, StoragePlan};
use prestige_net::config::{parse_toml, TomlDoc, TomlValue};
use prestige_net::NetChaos;
use prestige_types::{Actor, ClientId, ClusterConfig, ServerId, TimeoutConfig, ViewChangePolicy};
use prestige_workloads::FaultPlan;
use std::time::{Duration, Instant};

/// How a partition cuts links around its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartitionMode {
    /// Both directions (the target is fully isolated).
    Symmetric,
    /// Only traffic *to* the target is cut (it can talk, nobody answers).
    Inbound,
    /// Only traffic *from* the target is cut (it hears, nobody hears it).
    Outbound,
}

/// Which server a partition isolates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartitionTarget {
    /// Whoever leads the view current when the partition starts.
    Leader,
    /// A fixed server.
    Server(u32),
}

#[derive(Debug, Clone)]
struct PartitionSpec {
    at_s: f64,
    duration_ms: f64,
    target: PartitionTarget,
    mode: PartitionMode,
}

/// A crash-restart injection: kill a server abruptly at `at_s`, optionally
/// chop bytes off its WAL tail (the torn-tail crash signature), and restart
/// it from disk after `down_ms`. Requires the `[storage]` section.
#[derive(Debug, Clone)]
struct RestartSpec {
    at_s: f64,
    down_ms: f64,
    target: PartitionTarget,
    truncate_tail_bytes: u64,
}

/// Durable-storage knobs for the scenario cluster (`[storage]` section).
#[derive(Debug, Clone)]
struct StorageSpec {
    dir: Option<String>,
    checkpoint_interval: u64,
    segment_bytes: u64,
    sync_every_n: u64,
}

#[derive(Debug, Clone)]
struct Scenario {
    name: String,
    servers: u32,
    clients: u64,
    concurrency: usize,
    batch_size: usize,
    payload_size: usize,
    seed: u64,
    duration_s: f64,
    timeouts: TimeoutConfig,
    rotation_ms: Option<f64>,
    pipeline_depth: usize,
    verify_workers: usize,
    apply_workers: usize,
    fault_plan: FaultPlan,
    strategy_label: String,
    delay_ms: f64,
    jitter_ms: f64,
    loss: f64,
    partition: Option<PartitionSpec>,
    restart: Option<RestartSpec>,
    storage: Option<StorageSpec>,
    assert_no_fork: bool,
    assert_no_faulty_leader: bool,
    min_cert_refusals: u64,
    min_committed_after: u64,
    min_stable_checkpoint: u64,
    recovery_floor_tps: f64,
    recovery_window_s: f64,
}

fn get<'d>(doc: &'d TomlDoc, section: &str, key: &str) -> Option<&'d TomlValue> {
    doc.get(section).and_then(|s| s.get(key))
}

fn get_f64(doc: &TomlDoc, section: &str, key: &str, default: f64) -> Result<f64, String> {
    match get(doc, section, key) {
        Some(TomlValue::Float(f)) => Ok(*f),
        Some(TomlValue::Int(i)) => Ok(*i as f64),
        None => Ok(default),
        // A mistyped value must be an error, not a silent fallback — a quoted
        // assertion floor would otherwise disable the gate it configures.
        Some(other) => Err(format!("{section}.{key}: expected a number, got {other:?}")),
    }
}

fn get_u64(doc: &TomlDoc, section: &str, key: &str, default: u64) -> Result<u64, String> {
    match get(doc, section, key) {
        Some(TomlValue::Int(i)) => {
            u64::try_from(*i).map_err(|_| format!("{section}.{key} = {i} is out of range"))
        }
        None => Ok(default),
        Some(other) => Err(format!(
            "{section}.{key}: expected an integer, got {other:?}"
        )),
    }
}

fn get_str<'d>(doc: &'d TomlDoc, section: &str, key: &str) -> Option<&'d str> {
    match get(doc, section, key) {
        Some(TomlValue::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

impl Scenario {
    fn from_toml(text: &str) -> Result<Scenario, String> {
        let doc = parse_toml(text).map_err(|e| format!("scenario parse error: {e}"))?;

        let timeouts = match get_str(&doc, "scenario", "timeouts").unwrap_or("fast") {
            "fast" => TimeoutConfig::fast(),
            "default" => TimeoutConfig::default(),
            other => return Err(format!("scenario.timeouts `{other}` (fast or default)")),
        };

        let strategy_label = get_str(&doc, "faults", "strategy")
            .unwrap_or("s1")
            .to_string();
        let fault_plan = match get_str(&doc, "faults", "plan") {
            None => FaultPlan::None,
            Some(label) => {
                let count = get_u64(&doc, "faults", "count", 1)? as u32;
                let strategy = FaultPlan::parse_strategy(&strategy_label)
                    .ok_or_else(|| format!("faults.strategy `{strategy_label}` (s1 or s2)"))?;
                FaultPlan::from_parts(label, count, strategy)
                    .ok_or_else(|| format!("faults.plan `{label}`"))?
            }
        };

        let servers = get_u64(&doc, "scenario", "servers", 4)? as u32;
        let parse_target = |section: &str| -> Result<PartitionTarget, String> {
            match get_str(&doc, section, "target").unwrap_or("leader") {
                "leader" => Ok(PartitionTarget::Leader),
                name => {
                    let id = name
                        .strip_prefix('s')
                        .and_then(|rest| rest.parse::<u32>().ok())
                        .filter(|id| *id < servers)
                        .ok_or_else(|| {
                            format!(
                                "{section}.target `{name}` (leader, or s0..s{})",
                                servers.saturating_sub(1)
                            )
                        })?;
                    Ok(PartitionTarget::Server(id))
                }
            }
        };
        let partition = if doc.contains_key("partition") {
            let target = parse_target("partition")?;
            let mode = match get_str(&doc, "partition", "mode").unwrap_or("sym") {
                "sym" => PartitionMode::Symmetric,
                "inbound" => PartitionMode::Inbound,
                "outbound" => PartitionMode::Outbound,
                other => return Err(format!("partition.mode `{other}` (sym, inbound, outbound)")),
            };
            Some(PartitionSpec {
                at_s: get_f64(&doc, "partition", "at_s", 1.0)?,
                duration_ms: get_f64(&doc, "partition", "duration_ms", 500.0)?,
                target,
                mode,
            })
        } else {
            None
        };

        let storage = if doc.contains_key("storage") {
            Some(StorageSpec {
                dir: get_str(&doc, "storage", "dir").map(str::to_string),
                checkpoint_interval: get_u64(&doc, "storage", "checkpoint_interval", 64)?,
                segment_bytes: get_u64(&doc, "storage", "segment_bytes", 4 << 20)?,
                sync_every_n: get_u64(&doc, "storage", "sync_every_n", 64)?,
            })
        } else {
            None
        };
        let restart = if doc.contains_key("restart") {
            if storage.is_none() {
                return Err(
                    "[restart] requires a [storage] section (restart replays the WAL)".to_string(),
                );
            }
            Some(RestartSpec {
                at_s: get_f64(&doc, "restart", "at_s", 1.0)?,
                down_ms: get_f64(&doc, "restart", "down_ms", 500.0)?,
                target: parse_target("restart")?,
                truncate_tail_bytes: get_u64(&doc, "restart", "truncate_tail_bytes", 0)?,
            })
        } else {
            None
        };

        let rotation = get_f64(&doc, "scenario", "rotation_ms", 0.0)?;
        let scenario = Scenario {
            name: get_str(&doc, "scenario", "name")
                .unwrap_or("unnamed")
                .to_string(),
            servers,
            clients: get_u64(&doc, "scenario", "clients", 2)?,
            concurrency: get_u64(&doc, "scenario", "concurrency", 100)? as usize,
            batch_size: get_u64(&doc, "scenario", "batch_size", 100)? as usize,
            payload_size: get_u64(&doc, "scenario", "payload_size", 32)? as usize,
            seed: get_u64(&doc, "scenario", "seed", 42)?,
            duration_s: get_f64(&doc, "scenario", "duration_s", 5.0)?,
            timeouts,
            rotation_ms: (rotation > 0.0).then_some(rotation),
            pipeline_depth: get_u64(&doc, "scenario", "pipeline_depth", 4)? as usize,
            verify_workers: get_u64(&doc, "scenario", "verify_workers", 0)? as usize,
            apply_workers: get_u64(&doc, "scenario", "apply_workers", 0)? as usize,
            fault_plan,
            strategy_label,
            delay_ms: get_f64(&doc, "chaos", "delay_ms", 0.0)?,
            jitter_ms: get_f64(&doc, "chaos", "jitter_ms", 0.0)?,
            loss: get_f64(&doc, "chaos", "loss", 0.0)?,
            partition,
            restart,
            storage,
            assert_no_fork: !matches!(get(&doc, "assert", "no_fork"), Some(TomlValue::Bool(false))),
            assert_no_faulty_leader: matches!(
                get(&doc, "assert", "no_faulty_leader"),
                Some(TomlValue::Bool(true))
            ),
            min_cert_refusals: get_u64(&doc, "assert", "min_cert_refusals", 0)?,
            min_committed_after: get_u64(&doc, "assert", "min_committed", 0)?,
            min_stable_checkpoint: get_u64(&doc, "assert", "min_stable_checkpoint", 0)?,
            recovery_floor_tps: get_f64(&doc, "assert", "recovery_floor_tps", 0.0)?,
            recovery_window_s: get_f64(&doc, "assert", "recovery_window_s", 1.0)?,
        };

        // Scenario lint: restart scenarios have two footguns that produce
        // flaky-looking CI failures long after the scenario is written, so
        // they are rejected at parse time with the fix in the message.
        if scenario.restart.is_some() {
            // A restarted node replays its WAL, re-elects, and pages itself
            // forward through the repair plane; on a shared 1-core runner
            // that routinely takes over a second of wall clock near EOF.
            // A narrow recovery window turns scheduler starvation into a
            // "regression".
            if scenario.recovery_window_s < 2.0 {
                return Err(format!(
                    "[restart] scenarios need assert.recovery_window_s >= 2.0 \
                     (got {}): WAL replay + re-election + repair-plane catch-up \
                     does not fit a narrower window on 1-core CI runners",
                    scenario.recovery_window_s
                ));
            }
            // An unthrottled loopback cluster commits faster than a
            // restarted node can replay, so it chases a receding tip for
            // the whole run and the recovery assertions measure the
            // scheduler, not the protocol.
            if !doc.contains_key("chaos") {
                return Err("[restart] scenarios need a [chaos] throttle profile (e.g. \
                     delay_ms = 5.0, jitter_ms = 5.0, loss = 0.005): unthrottled \
                     loopback outruns WAL replay and the restarted node never \
                     catches the tip"
                    .to_string());
            }
        }
        Ok(scenario)
    }

    fn cluster_config(&self) -> ClusterConfig {
        let mut config = ClusterConfig::new(self.servers)
            .with_batch_size(self.batch_size)
            .with_payload_size(self.payload_size)
            .with_timeouts(self.timeouts.clone())
            .with_pipeline_depth(self.pipeline_depth)
            .with_verify_workers(self.verify_workers)
            .with_apply_workers(self.apply_workers);
        if let Some(interval_ms) = self.rotation_ms {
            config.policy = ViewChangePolicy::Timing { interval_ms };
        }
        if let Some(storage) = &self.storage {
            config = config.with_checkpoint_interval(storage.checkpoint_interval);
        }
        config
    }

    /// Builds the cluster's storage plan when the scenario is durable.
    /// Without an explicit `storage.dir`, a per-run temp directory is used
    /// (and wiped first, so a rerun never replays a stale log).
    fn storage_plan(&self) -> Option<StoragePlan> {
        let spec = self.storage.as_ref()?;
        let root = match &spec.dir {
            Some(dir) => std::path::PathBuf::from(dir),
            None => std::env::temp_dir().join(format!(
                "prestige-chaos-{}-{}",
                self.name.replace(['/', ' '], "_"),
                std::process::id()
            )),
        };
        let _ = std::fs::remove_dir_all(&root);
        let mut plan = StoragePlan::new(root);
        plan.options.segment_bytes = spec.segment_bytes;
        plan.options.sync_every_n = spec.sync_every_n;
        Some(plan)
    }
}

/// One timeline sample: elapsed seconds, cluster-wide commits, and each
/// server's committed tx count (shows who stalls during the fault window).
struct Sample {
    t_s: f64,
    total: u64,
    per_server: Vec<u64>,
}

fn sample(cluster: &LocalCluster, t_s: f64, n: u32) -> Sample {
    Sample {
        t_s,
        total: cluster.total_committed(),
        per_server: (0..n)
            .map(|i| {
                cluster
                    .server_stats(ServerId(i))
                    .map(|s| s.committed_tx)
                    .unwrap_or(0)
            })
            .collect(),
    }
}

/// All actors other than `target` (servers and clients), i.e. the side of
/// the partition the target is cut off from.
fn everyone_but(scenario: &Scenario, target: ServerId) -> Vec<Actor> {
    let mut others: Vec<Actor> = (0..scenario.servers)
        .filter(|&i| ServerId(i) != target)
        .map(|i| Actor::Server(ServerId(i)))
        .collect();
    others.extend((0..scenario.clients).map(|c| Actor::Client(ClientId(c))));
    others
}

struct Options {
    scenario: String,
    out: String,
    duration_override: Option<f64>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut scenario = None;
    let mut out = "CHAOS_report.json".to_string();
    let mut duration_override = None;
    let mut i = 1;
    while i < args.len() {
        let need = |name: &str| -> Result<&String, String> {
            args.get(i + 1).ok_or(format!("{name} needs a value"))
        };
        match args[i].as_str() {
            "--scenario" => scenario = Some(need("--scenario")?.clone()),
            "--out" => out = need("--out")?.clone(),
            "--duration" => {
                duration_override = Some(need("--duration")?.parse().map_err(|e| format!("{e}"))?)
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 2;
    }
    Ok(Options {
        scenario: scenario.ok_or("missing --scenario")?,
        out,
        duration_override,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("chaos_net: {message}");
            eprintln!("usage: chaos_net --scenario <file.toml> [--out PATH] [--duration SECS]");
            std::process::exit(1);
        }
    };
    let text = match std::fs::read_to_string(&opts.scenario) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos_net: reading {}: {e}", opts.scenario);
            std::process::exit(1);
        }
    };
    let mut scenario = match Scenario::from_toml(&text) {
        Ok(s) => s,
        Err(message) => {
            eprintln!("chaos_net: {}: {message}", opts.scenario);
            std::process::exit(1);
        }
    };
    if let Some(secs) = opts.duration_override {
        scenario.duration_s = secs;
    }

    match run(&scenario, &opts.out) {
        Ok(()) => {}
        Err(failures) => {
            for failure in &failures {
                eprintln!("chaos_net: ASSERTION FAILED: {failure}");
            }
            std::process::exit(1);
        }
    }
}

fn run(scenario: &Scenario, out_path: &str) -> Result<(), Vec<String>> {
    let n = scenario.servers;
    let behaviors = scenario.fault_plan.behaviors(n);
    let chaos = NetChaos::new();
    if scenario.delay_ms > 0.0 || scenario.jitter_ms > 0.0 {
        chaos.set_link_delay(
            Duration::from_secs_f64(scenario.delay_ms / 1000.0),
            Duration::from_secs_f64(scenario.jitter_ms / 1000.0),
        );
    }
    if scenario.loss > 0.0 {
        chaos.set_loss(scenario.loss);
    }

    eprintln!(
        "chaos_net: scenario `{}` — n={n}, fault plan {:?}, delay {}±{} ms, loss {:.1}%, \
         partition {:?}",
        scenario.name,
        scenario.fault_plan,
        scenario.delay_ms,
        scenario.jitter_ms,
        scenario.loss * 100.0,
        scenario.partition,
    );
    let storage_plan = scenario.storage_plan();
    let mut cluster = LocalCluster::launch_full(
        scenario.cluster_config(),
        scenario.seed,
        scenario.clients,
        scenario.concurrency,
        &behaviors,
        Some(chaos.clone()),
        storage_plan,
    );

    // --- timeline: sample progress, fire the partition / crash-restart ---
    let started = Instant::now();
    let mut series: Vec<Sample> = Vec::new();
    let mut partition_fired = false;
    let mut partition_window: Option<(f64, f64)> = None; // (start_s, heal_s)
    let mut partitioned_server: Option<ServerId> = None;
    let mut restart_due: Option<(ServerId, f64)> = None; // (target, restart_at_s)
    let mut restart_fired = false;
    let mut restart_killed_s: Option<f64> = None;
    let mut restart_window: Option<(f64, f64)> = None; // (killed_s, restarted_s)
    let mut restarted_server: Option<ServerId> = None;
    let mut truncated_bytes: u64 = 0;
    let tick = Duration::from_millis(100);
    loop {
        let t_s = started.elapsed().as_secs_f64();
        if t_s >= scenario.duration_s {
            break;
        }
        series.push(sample(&cluster, t_s, n));

        if let Some(spec) = &scenario.partition {
            if !partition_fired && t_s >= spec.at_s {
                partition_fired = true;
                let target = match spec.target {
                    PartitionTarget::Server(id) => ServerId(id),
                    PartitionTarget::Leader => cluster
                        .correct_servers()
                        .first()
                        .and_then(|&observer| cluster.view_of(observer))
                        .map(|(_, leader)| leader)
                        .unwrap_or(ServerId(0)),
                };
                let others = everyone_but(scenario, target);
                let me = [Actor::Server(target)];
                match spec.mode {
                    PartitionMode::Symmetric => chaos.partition_between(&me, &others),
                    PartitionMode::Inbound => chaos.partition_oneway(&others, &me),
                    PartitionMode::Outbound => chaos.partition_oneway(&me, &others),
                }
                chaos.heal_after(Duration::from_secs_f64(spec.duration_ms / 1000.0));
                partition_window = Some((t_s, t_s + spec.duration_ms / 1000.0));
                partitioned_server = Some(target);
                eprintln!(
                    "chaos_net: t={t_s:.2}s partition {:?} around {target:?} for {} ms \
                     (heal scheduled)",
                    spec.mode, spec.duration_ms
                );
            }
        }

        if let Some(spec) = &scenario.restart {
            if !restart_fired && t_s >= spec.at_s {
                restart_fired = true;
                let target = match spec.target {
                    PartitionTarget::Server(id) => ServerId(id),
                    PartitionTarget::Leader => cluster
                        .correct_servers()
                        .first()
                        .and_then(|&observer| cluster.view_of(observer))
                        .map(|(_, leader)| leader)
                        .unwrap_or(ServerId(0)),
                };
                cluster.crash_server(target);
                if spec.truncate_tail_bytes > 0 {
                    match cluster.truncate_wal_tail(target, spec.truncate_tail_bytes) {
                        Ok(cut) => truncated_bytes = cut,
                        Err(e) => eprintln!("chaos_net: WAL tail truncation failed: {e}"),
                    }
                }
                restart_killed_s = Some(t_s);
                restart_due = Some((target, t_s + spec.down_ms / 1000.0));
                eprintln!(
                    "chaos_net: t={t_s:.2}s killed {target:?} (down {} ms, torn tail {} bytes)",
                    spec.down_ms, truncated_bytes
                );
            }
        }
        if let Some((target, due_s)) = restart_due {
            if t_s >= due_s {
                restart_due = None;
                cluster.restart_server(target);
                restart_window = Some((restart_killed_s.unwrap_or(due_s), t_s));
                restarted_server = Some(target);
                eprintln!("chaos_net: t={t_s:.2}s restarted {target:?} from its WAL");
            }
        }
        std::thread::sleep(tick);
    }
    let final_t = started.elapsed().as_secs_f64();
    series.push(sample(&cluster, final_t, n));

    // --- gather ---------------------------------------------------------
    let final_sample = series.last().expect("series has the final sample");
    let total_committed = final_sample.total;
    let overall_tps = total_committed as f64 / final_t.max(1e-9);

    // A scenario that declares a partition but never runs it to the heal
    // (fired too late, or not at all) must not let the "after the fault
    // window" assertions pass vacuously: count zero post-heal commits so the
    // min_committed gate fails loudly, and record the defect explicitly.
    let heal_s = partition_window.map(|(_, heal)| heal).unwrap_or(0.0);
    let partition_incomplete =
        scenario.partition.is_some() && (partition_window.is_none() || heal_s > final_t);
    let committed_at_heal = if partition_incomplete {
        total_committed
    } else {
        series
            .iter()
            .find(|s| s.t_s >= heal_s)
            .map(|s| s.total)
            .unwrap_or(total_committed)
    };
    let committed_after_heal = total_committed.saturating_sub(committed_at_heal);

    // Clamp the recovery window to the actual run so a short run is not
    // penalized by dividing a partial window's commits by the full width.
    let window = scenario.recovery_window_s.max(0.1).min(final_t.max(0.1));
    let window_start = (final_t - window).max(0.0);
    let committed_at_window_start = series
        .iter()
        .find(|s| s.t_s >= window_start)
        .map(|s| s.total)
        .unwrap_or(0);
    let recovery_tps = total_committed.saturating_sub(committed_at_window_start) as f64 / window;

    let correct = cluster.correct_servers();
    let fork_check = cluster.verify_no_fork(&correct);

    let observer = correct.first().copied().unwrap_or(ServerId(0));
    let reputations = cluster.reputations_at(observer).unwrap_or_default();
    let max_tip = (0..n)
        .filter_map(|i| cluster.committed_chain(ServerId(i)))
        .filter_map(|chain| chain.last().map(|(tip, _)| *tip))
        .max()
        .unwrap_or(0);

    let mut server_reports = Vec::new();
    for i in 0..n {
        let id = ServerId(i);
        let stats = cluster.server_stats(id);
        let tip = cluster
            .committed_chain(id)
            .and_then(|chain| chain.last().map(|(tip, _)| *tip))
            .unwrap_or(0);
        let mut node = Json::obj();
        node.push("server", format!("s{i}"))
            .push("behavior", format!("{:?}", cluster.behavior_of(id)))
            .push(
                "role",
                cluster
                    .role_of(id)
                    .map(|r| Json::from(format!("{r:?}")))
                    .unwrap_or(Json::Null),
            )
            .push(
                "view",
                cluster
                    .view_of(id)
                    .map(|(v, _)| Json::UInt(v.0))
                    .unwrap_or(Json::Null),
            )
            .push("latest_seq", tip)
            .push("commit_gap", max_tip.saturating_sub(tip));
        if let Some(stats) = &stats {
            node.push("committed_tx", stats.committed_tx)
                .push("committed_blocks", stats.committed_blocks)
                .push("views_installed", stats.views_installed)
                .push("elections_won", stats.elections_won)
                .push("campaigns_started", stats.campaigns_started)
                .push("camp_cert_refusals", stats.camp_cert_refusals)
                .push("sync_reqs_sent", stats.sync_reqs_sent)
                .push("election_retransmits", stats.election_retransmits)
                .push("double_assign_refused", stats.double_assign_refused);
        }
        if scenario.storage.is_some() {
            if let Some(stats) = &stats {
                node.push("checkpoint_count", stats.checkpoints_formed)
                    .push("gc_pruned_keys", stats.gc_pruned_keys);
            }
            node.push(
                "stable_checkpoint",
                cluster
                    .stable_checkpoint_of(id)
                    .map(Json::UInt)
                    .unwrap_or(Json::Null),
            );
            if let Some(storage) = cluster.storage_stats(id) {
                node.push("wal_bytes", storage.wal_bytes)
                    .push("wal_records", storage.records)
                    .push("fsyncs", storage.fsyncs)
                    .push("wal_segments", storage.segments)
                    .push("wal_pruned_segments", storage.pruned_segments)
                    .push("wal_pruned_bytes", storage.pruned_bytes);
            }
        }
        if let Some((_, rp)) = reputations.iter().find(|(s, _)| *s == id) {
            node.push("reputation_penalty", *rp);
        }
        server_reports.push(node);
    }

    // --- assert ---------------------------------------------------------
    let mut failures = Vec::new();
    if partition_incomplete {
        failures.push(format!(
            "the configured partition did not run to its heal within the {final_t:.1}s run \
             (fired: {}, heal at {heal_s:.1}s) — extend duration_s or move partition.at_s \
             earlier",
            partition_window.is_some()
        ));
    }
    if scenario.assert_no_fork {
        match &fork_check {
            Ok(prefix) => eprintln!(
                "chaos_net: no-fork holds across {} correct servers \
                 (identical up to sequence {prefix})",
                correct.len()
            ),
            Err(message) => failures.push(format!("safety violated — {message}")),
        }
    }
    if scenario.assert_no_faulty_leader {
        // "The liar never wins a certified election": no faulty server may
        // have assembled a vc_QC, and no correct server may currently follow
        // a faulty leader.
        for i in 0..n {
            let id = ServerId(i);
            if !cluster.behavior_of(id).is_faulty() {
                continue;
            }
            let won = cluster
                .server_stats(id)
                .map(|s| s.elections_won)
                .unwrap_or(0);
            if won > 0 {
                failures.push(format!(
                    "faulty server s{i} won {won} election(s) — the certificate \
                     check failed to refuse its claim"
                ));
            }
        }
        for &id in &correct {
            if let Some((view, leader)) = cluster.view_of(id) {
                if cluster.behavior_of(leader).is_faulty() {
                    failures.push(format!(
                        "correct server s{} follows faulty leader s{} in view {}",
                        id.0, leader.0, view.0
                    ));
                }
            }
        }
        if failures.is_empty() {
            eprintln!("chaos_net: no faulty server ever held a certified leadership");
        }
    }
    if scenario.min_cert_refusals > 0 {
        // The refusals must actually have been *certificate* refusals: prove
        // the check bit, rather than the attack never having been attempted.
        let refusals: u64 = correct
            .iter()
            .filter_map(|&id| cluster.server_stats(id))
            .map(|s| s.camp_cert_refusals)
            .sum();
        if refusals < scenario.min_cert_refusals {
            failures.push(format!(
                "only {refusals} certificate refusal(s) across correct servers \
                 (need {}) — the claimed attack never exercised the check",
                scenario.min_cert_refusals
            ));
        } else {
            eprintln!(
                "chaos_net: the certificate check refused {refusals} uncertifiable campaign(s)"
            );
        }
    }
    if scenario.restart.is_some() {
        match restarted_server {
            None => failures.push(format!(
                "the configured crash-restart did not complete within the {final_t:.1}s run \
                 (killed: {restart_fired}) — extend duration_s or move restart.at_s earlier"
            )),
            Some(id) => {
                // The restarted replica must actually be back: answering
                // inspections and holding a committed chain consistent with
                // the survivors (covered by verify_no_fork above when it is
                // correct — assert it answers at all here).
                if cluster.committed_chain(id).is_none() {
                    failures.push(format!(
                        "restarted server s{} does not answer after rejoin",
                        id.0
                    ));
                }
            }
        }
    }
    if scenario.min_stable_checkpoint > 0 {
        let best = correct
            .iter()
            .filter_map(|&id| cluster.stable_checkpoint_of(id))
            .max()
            .unwrap_or(0);
        if best < scenario.min_stable_checkpoint {
            failures.push(format!(
                "highest stable checkpoint {best} across correct servers is below the \
                 required {} — checkpoints never formed (or GC never ran)",
                scenario.min_stable_checkpoint
            ));
        } else {
            eprintln!("chaos_net: stable checkpoint reached sequence {best}");
        }
    }
    if recovery_tps < scenario.recovery_floor_tps {
        failures.push(format!(
            "recovery throughput {recovery_tps:.0} tx/s over the trailing {window:.1}s is \
             below the {:.0} tx/s floor",
            scenario.recovery_floor_tps
        ));
    }
    if committed_after_heal < scenario.min_committed_after {
        failures.push(format!(
            "only {committed_after_heal} tx committed after the fault window \
             (need {})",
            scenario.min_committed_after
        ));
    }

    // --- report ---------------------------------------------------------
    let mut chaos_obj = Json::obj();
    chaos_obj
        .push("delay_ms", scenario.delay_ms)
        .push("jitter_ms", scenario.jitter_ms)
        .push("loss", scenario.loss);
    let partition_obj = match (&scenario.partition, partition_window) {
        (Some(spec), Some((start, heal))) => {
            let mut p = Json::obj();
            p.push("mode", format!("{:?}", spec.mode))
                .push(
                    "server",
                    partitioned_server
                        .map(|s| format!("s{}", s.0))
                        .unwrap_or_default(),
                )
                .push("started_s", start)
                .push("healed_s", heal)
                .push("duration_ms", spec.duration_ms);
            p
        }
        _ => Json::Null,
    };
    let restart_obj = match (&scenario.restart, restart_window) {
        (Some(spec), Some((killed, back))) => {
            let mut r = Json::obj();
            r.push(
                "server",
                restarted_server
                    .map(|s| format!("s{}", s.0))
                    .unwrap_or_default(),
            )
            .push("killed_s", killed)
            .push("restarted_s", back)
            .push("down_ms", spec.down_ms)
            .push("truncated_tail_bytes", truncated_bytes);
            r
        }
        _ => Json::Null,
    };

    let mut liveness = Vec::new();
    for s in &series {
        let mut entry = Json::obj();
        entry
            .push("t_s", s.t_s)
            .push("committed_total", s.total)
            .push(
                "per_server_committed",
                s.per_server
                    .iter()
                    .map(|&c| Json::from(c))
                    .collect::<Vec<_>>(),
            );
        liveness.push(entry);
    }

    // Cluster-wide transport counters (loopback: writer counters stay 0, the
    // delivery counters still expose chaos-induced drops per run).
    // Merged event-loop stage profile across the live servers (the always-on
    // profiler costs <1% and answers "where did the chaos push the time?").
    let loop_snapshot = cluster.loop_profile();
    let mut stages_obj = Json::obj();
    for stage in LoopStage::ALL {
        let mut s = Json::obj();
        s.push("ns", loop_snapshot.stage_nanos(stage))
            .push("events", loop_snapshot.stage_events(stage));
        stages_obj.push(stage.name(), s);
    }
    let mut profile_obj = Json::obj();
    profile_obj
        .push("total_ns", loop_snapshot.total_nanos)
        .push("busy_ns", loop_snapshot.busy_nanos())
        .push("coverage", loop_snapshot.coverage())
        .push("stages", stages_obj);

    let totals = cluster.transport_totals();
    let mut transport_obj = Json::obj();
    transport_obj
        .push("sent", totals.sent)
        .push("received", totals.received)
        .push("dropped", totals.dropped)
        .push("writev_calls", totals.writev_calls)
        .push("frames_coalesced", totals.frames_coalesced)
        .push("flushes_idle", totals.flushes_idle)
        .push("flushes_full", totals.flushes_full);

    let mut report = Json::obj();
    report
        .push("bench", "chaos_net")
        .push("scenario", scenario.name.as_str())
        .push("transport", "loopback+chaos")
        .push("transport_stats", transport_obj)
        .push("servers", n)
        .push("clients", scenario.clients)
        .push("concurrency", scenario.concurrency)
        .push("batch_size", scenario.batch_size)
        .push("seed", scenario.seed)
        .push("fault_plan", scenario.fault_plan.label())
        .push("fault_count", scenario.fault_plan.count())
        .push("strategy", scenario.strategy_label.as_str())
        .push("chaos", chaos_obj)
        .push("partition", partition_obj)
        .push("restart", restart_obj)
        .push("durable", scenario.storage.is_some())
        .push("measured_seconds", final_t)
        .push("committed_tx", total_committed)
        .push("tx_per_sec", overall_tps)
        .push("committed_after_heal", committed_after_heal)
        .push("recovery_window_s", window)
        .push("recovery_tx_per_sec", recovery_tps)
        .push(
            "no_fork",
            match &fork_check {
                Ok(_) => Json::Bool(true),
                Err(_) => Json::Bool(false),
            },
        )
        .push(
            "identical_prefix_seq",
            match &fork_check {
                Ok(prefix) => Json::UInt(*prefix),
                Err(_) => Json::Null,
            },
        )
        .push("loop_profile", profile_obj)
        .push("nodes", Json::Arr(server_reports))
        .push("liveness", Json::Arr(liveness))
        .push("assertions_passed", failures.is_empty());

    if !failures.is_empty() {
        for i in 0..n {
            if let Some(snapshot) = cluster.debug_snapshot(ServerId(i)) {
                eprintln!("chaos_net: s{i} {snapshot}");
            }
        }
    }

    let rendered = report.render();
    print!("{rendered}");
    if let Err(e) = std::fs::write(out_path, &rendered) {
        eprintln!("chaos_net: failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "chaos_net: {total_committed} tx in {final_t:.1}s ({overall_tps:.0} tx/s overall, \
         {recovery_tps:.0} tx/s in the last {window:.1}s) -> {out_path}"
    );

    cluster.shutdown();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal restart scenario, assembled from parts so each test can
    /// break exactly one rule.
    fn restart_scenario(chaos: &str, window: &str) -> String {
        format!(
            "[scenario]\nname = \"lint\"\nservers = 4\nduration_s = 6.0\n\
             {chaos}\n[storage]\ncheckpoint_interval = 16\n\
             [restart]\nat_s = 1.0\ndown_ms = 800.0\ntarget = \"leader\"\n\
             [assert]\n{window}\n"
        )
    }

    const CHAOS: &str = "[chaos]\ndelay_ms = 5.0\njitter_ms = 5.0\nloss = 0.005";

    #[test]
    fn restart_scenario_with_throttle_and_wide_window_parses() {
        let text = restart_scenario(CHAOS, "recovery_window_s = 2.0");
        let scenario = Scenario::from_toml(&text).expect("valid scenario");
        assert!(scenario.restart.is_some());
    }

    #[test]
    fn restart_scenario_with_narrow_recovery_window_is_rejected() {
        let text = restart_scenario(CHAOS, "recovery_window_s = 1.5");
        let err = Scenario::from_toml(&text).expect_err("lint must fire");
        assert!(
            err.contains("recovery_window_s >= 2.0"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn restart_scenario_without_chaos_profile_is_rejected() {
        let text = restart_scenario("", "recovery_window_s = 2.0");
        let err = Scenario::from_toml(&text).expect_err("lint must fire");
        assert!(
            err.contains("[chaos] throttle profile"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn non_restart_scenario_is_not_linted() {
        let text = "[scenario]\nname = \"plain\"\nservers = 4\n\
                    [assert]\nrecovery_window_s = 1.0\n";
        assert!(Scenario::from_toml(text).is_ok());
    }

    #[test]
    fn committed_restart_scenarios_pass_the_lint() {
        for path in [
            "../../scenarios/restart_leader.toml",
            "../../scenarios/restart_minority_chaos.toml",
            "../../scenarios/restart_torn_tail.toml",
        ] {
            let text = std::fs::read_to_string(path).expect(path);
            Scenario::from_toml(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        }
    }
}
