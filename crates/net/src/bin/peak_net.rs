//! `peak_net` — drive a PrestigeBFT cluster to saturation and record the
//! peak throughput/latency of the real networking runtime.
//!
//! This is the perf baseline every hot-path PR measures against: it launches
//! `--servers` PrestigeBFT replicas plus `--clients` closed-loop clients on
//! real node runtimes (threads, timers, the full `Transport` stack), runs a
//! warmup followed by a measurement window, and writes the result as JSON:
//!
//! ```text
//! cargo run --release -p prestige-net --bin peak_net -- --duration 10
//! cat BENCH_peak.json
//! ```
//!
//! Three measurement surfaces:
//!
//! - the default single point (loopback, the committed baseline config);
//! - `--tcp`: the same cluster over real sockets ([`TcpCluster`]), which
//!   additionally exercises — and reports — the event-driven writer loop
//!   (vectored writes, frame coalescing, idle-vs-full flushes);
//! - `--sweep`: a `pipeline_depth × verify_workers` grid (the host's core
//!   count is recorded per run) written as a per-point array plus a `best`
//!   summary, while the top-level fields still describe the committed-config
//!   point so baseline comparison and the CI floor keep working unchanged.
//!
//! Latency is reported from the clients' log-bucketed histograms (p50 / p90 /
//! p99 / p99.9, ≤ 6.25 % bucket error, exact max), not from the bounded raw
//! sample buffers, so tail percentiles stay meaningful at hundreds of
//! thousands of commits per window.

use prestige_core::{ClientStats, LatencyHistogram, LoopSnapshot, LoopStage};
use prestige_net::cluster::{LocalCluster, StoragePlan, TcpCluster};
use prestige_net::TransportTotals;
use prestige_types::{ClientId, ClusterConfig, ServerId};
use std::time::{Duration, Instant};

struct Options {
    servers: u32,
    clients: u64,
    concurrency: usize,
    batch_size: usize,
    payload: usize,
    pipeline: usize,
    verify_workers: usize,
    apply_workers: usize,
    warmup_s: f64,
    duration_s: f64,
    durable: bool,
    tcp: bool,
    sweep: bool,
    sweep_pipeline: Vec<usize>,
    sweep_verify: Vec<usize>,
    checkpoint_interval: u64,
    profile: bool,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            servers: 4,
            clients: 4,
            concurrency: 512,
            batch_size: 500,
            payload: 32,
            // Defaults tuned for the 1-core benchmark container: a modest
            // window and inline verification/apply (worker threads only pay
            // off when there are spare cores — pass --verify-workers /
            // --apply-workers N to use them). The sweep showed pipeline 4
            // beats 8 on one core: the shallower window keeps client bundles
            // from convoying behind a long uncommitted tail.
            pipeline: 4,
            verify_workers: 0,
            apply_workers: 0,
            warmup_s: 2.0,
            duration_s: 10.0,
            durable: false,
            tcp: false,
            sweep: false,
            sweep_pipeline: vec![4, 8, 16],
            sweep_verify: vec![0, 1, 2],
            checkpoint_interval: 64,
            profile: true,
            out: "BENCH_peak.json".to_string(),
        }
    }
}

fn parse_list(text: &str, name: &str) -> Result<Vec<usize>, String> {
    let values: Result<Vec<usize>, _> = text
        .split(',')
        .map(|part| part.trim().parse::<usize>())
        .collect();
    match values {
        Ok(list) if !list.is_empty() => Ok(list),
        _ => Err(format!("{name} wants a comma-separated list, got `{text}`")),
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 1;
    while i < args.len() {
        let need = |name: &str| -> Result<&String, String> {
            args.get(i + 1).ok_or(format!("{name} needs a value"))
        };
        match args[i].as_str() {
            "--servers" => opts.servers = need("--servers")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => opts.clients = need("--clients")?.parse().map_err(|e| format!("{e}"))?,
            "--concurrency" => {
                opts.concurrency = need("--concurrency")?.parse().map_err(|e| format!("{e}"))?
            }
            "--batch" => opts.batch_size = need("--batch")?.parse().map_err(|e| format!("{e}"))?,
            "--payload" => opts.payload = need("--payload")?.parse().map_err(|e| format!("{e}"))?,
            "--pipeline" => {
                opts.pipeline = need("--pipeline")?.parse().map_err(|e| format!("{e}"))?
            }
            "--verify-workers" => {
                opts.verify_workers = need("--verify-workers")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--apply-workers" => {
                opts.apply_workers = need("--apply-workers")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--warmup" => opts.warmup_s = need("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                opts.duration_s = need("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--durable" => {
                opts.durable = true;
                i -= 1; // flag takes no value
            }
            "--tcp" => {
                opts.tcp = true;
                i -= 1;
            }
            "--sweep" => {
                opts.sweep = true;
                i -= 1;
            }
            "--sweep-pipeline" => {
                opts.sweep_pipeline = parse_list(need("--sweep-pipeline")?, "--sweep-pipeline")?
            }
            "--sweep-verify" => {
                opts.sweep_verify = parse_list(need("--sweep-verify")?, "--sweep-verify")?
            }
            "--checkpoint-interval" => {
                opts.checkpoint_interval = need("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--no-profile" => {
                opts.profile = false;
                i -= 1;
            }
            "--out" => opts.out = need("--out")?.clone(),
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 2;
    }
    if opts.tcp && opts.durable {
        return Err("--tcp does not support --durable".into());
    }
    Ok(opts)
}

/// Pulls `"tx_per_sec": <value>` out of a previously written report, so the
/// run can print a before/after comparison against the committed baseline.
/// (The top-level field always comes before the sweep array, so the first
/// occurrence is the committed-config point.)
fn baseline_tps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let tail = text.split("\"tx_per_sec\":").nth(1)?;
    tail.split([',', '}']).next()?.trim().parse().ok()
}

/// One cluster under benchmark, over either transport. Wraps exactly the
/// operations the measurement loop needs so a sweep can mix configs without
/// duplicating the warmup/measure/teardown choreography.
enum Bench {
    Loopback(LocalCluster),
    Tcp(TcpCluster),
}

impl Bench {
    fn client_stats(&self, id: ClientId) -> Option<ClientStats> {
        match self {
            Bench::Loopback(c) => c.client_stats(id),
            Bench::Tcp(c) => c.client_stats(id),
        }
    }

    fn reset_client_latency(&self) {
        match self {
            Bench::Loopback(c) => c.reset_client_latency(),
            Bench::Tcp(c) => c.reset_client_latency(),
        }
    }

    fn transport_totals(&self) -> TransportTotals {
        match self {
            Bench::Loopback(c) => c.transport_totals(),
            Bench::Tcp(c) => c.transport_totals(),
        }
    }

    fn loop_profile(&self) -> LoopSnapshot {
        match self {
            Bench::Loopback(c) => c.loop_profile(),
            Bench::Tcp(c) => c.loop_profile(),
        }
    }

    fn shutdown(self) -> Vec<ClientStats> {
        let stats = match self {
            Bench::Loopback(c) => c.shutdown(),
            Bench::Tcp(c) => c.shutdown(),
        };
        stats.into_values().collect()
    }
}

/// Durable-run storage totals: `(wal_bytes, fsyncs, checkpoints, gc_pruned,
/// stable_checkpoint)`.
type StorageSummary = (u64, u64, u64, u64, u64);

/// The measurements of one grid point.
struct Point {
    pipeline: usize,
    verify_workers: usize,
    elapsed: f64,
    committed: u64,
    tps: f64,
    mean_ms: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    max_ms: f64,
    totals: TransportTotals,
    storage: Option<StorageSummary>,
    profile: Option<LoopSnapshot>,
}

/// Launches one cluster with the given hot-path knobs, runs
/// warmup + measurement, and tears it down.
fn run_point(opts: &Options, pipeline: usize, verify_workers: usize) -> Point {
    let mut config = ClusterConfig::new(opts.servers)
        .with_batch_size(opts.batch_size)
        .with_payload_size(opts.payload)
        .with_pipeline_depth(pipeline)
        .with_verify_workers(verify_workers)
        .with_apply_workers(opts.apply_workers);
    if opts.durable {
        config = config.with_checkpoint_interval(opts.checkpoint_interval);
    }

    // Durable mode: every server appends its commits to a real on-disk WAL
    // (fsync batched) and forms certified checkpoints — the measured delta
    // against the default in-memory run is the price of crash durability.
    let wal_root = opts.durable.then(|| {
        let root = std::env::temp_dir().join(format!(
            "prestige-peak-{}-{pipeline}-{verify_workers}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        root
    });
    let cluster = if opts.tcp {
        match TcpCluster::launch_configured(config, 7, opts.clients, opts.concurrency, opts.profile)
        {
            Ok(c) => Bench::Tcp(c),
            Err(e) => {
                eprintln!("peak_net: failed to bind TCP cluster: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let storage = wal_root.as_ref().map(|root| StoragePlan::new(root.clone()));
        Bench::Loopback(LocalCluster::launch_configured(
            config,
            7,
            opts.clients,
            opts.concurrency,
            &[],
            None,
            storage,
            opts.profile,
        ))
    };

    let committed_snapshot = |c: &Bench| -> u64 {
        (0..opts.clients)
            .filter_map(|i| c.client_stats(ClientId(i)))
            .map(|s| s.committed_tx)
            .sum()
    };

    // Warmup: let leaders elect, batches fill, and queues reach steady
    // state; then reset latency accounting so the percentiles below cover
    // only the measurement window.
    std::thread::sleep(Duration::from_secs_f64(opts.warmup_s));
    cluster.reset_client_latency();
    let before = committed_snapshot(&cluster);
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(opts.duration_s));
    let elapsed = t0.elapsed().as_secs_f64();
    let committed = committed_snapshot(&cluster).saturating_sub(before);
    let totals = cluster.transport_totals();
    let profile = opts.profile.then(|| cluster.loop_profile());

    // Storage-plane totals across servers (durable runs only), gathered
    // while the nodes are still alive.
    let storage = match (&cluster, opts.durable) {
        (Bench::Loopback(local), true) => {
            let mut wal_bytes = 0u64;
            let mut fsyncs = 0u64;
            let mut checkpoints = 0u64;
            let mut gc_pruned = 0u64;
            let mut stable = 0u64;
            for i in 0..opts.servers {
                let id = ServerId(i);
                if let Some(s) = local.storage_stats(id) {
                    wal_bytes += s.wal_bytes;
                    fsyncs += s.fsyncs;
                }
                if let Some((c, g)) = local.checkpoint_counters(id) {
                    checkpoints += c;
                    gc_pruned += g;
                }
                stable = stable.max(local.stable_checkpoint_of(id).unwrap_or(0));
            }
            Some((wal_bytes, fsyncs, checkpoints, gc_pruned, stable))
        }
        _ => None,
    };

    // Merge the per-client histograms: percentiles come from log-scaled
    // buckets (every commit counted), the mean from the exact sums.
    let final_stats = cluster.shutdown();
    if let Some(root) = &wal_root {
        let _ = std::fs::remove_dir_all(root);
    }
    let mut hist = LatencyHistogram::new();
    let mut latency_sum_ms = 0.0;
    let mut latency_count = 0u64;
    for stats in &final_stats {
        hist.merge(&stats.latency_hist);
        latency_sum_ms += stats.latency_sum_ms;
        latency_count += stats.latency_count;
    }
    let mean_ms = if latency_count == 0 {
        0.0
    } else {
        latency_sum_ms / latency_count as f64
    };

    Point {
        pipeline,
        verify_workers,
        elapsed,
        committed,
        tps: committed as f64 / elapsed,
        mean_ms,
        p50_ms: hist.percentile_ms(50.0),
        p90_ms: hist.percentile_ms(90.0),
        p99_ms: hist.percentile_ms(99.0),
        p999_ms: hist.percentile_ms(99.9),
        max_ms: hist.max_ms(),
        totals,
        storage,
        profile,
    }
}

/// Serializes a merged [`LoopSnapshot`] as the `loop_profile` JSON object:
/// per-stage nanoseconds + event counts, the busy total, and the fraction of
/// busy time the stages account for.
fn loop_profile_json(snap: &LoopSnapshot, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let stages: Vec<String> = LoopStage::ALL
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"ns\": {}, \"events\": {}}}",
                s.name(),
                snap.stage_nanos(*s),
                snap.stage_events(*s)
            )
        })
        .collect();
    format!(
        "{pad}\"loop_profile\": {{\"total_ns\": {}, \"busy_ns\": {}, \
         \"coverage\": {:.4}, \"stages\": {{{}}}}}",
        snap.total_nanos,
        snap.busy_nanos(),
        snap.coverage(),
        stages.join(", ")
    )
}

/// The shared metric fields of one point, at `indent` spaces (the top-level
/// report and each sweep entry use the same shape).
fn metrics_json(point: &Point, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let t = &point.totals;
    format!(
        "{pad}\"measured_seconds\": {:.3},\n{pad}\"committed_tx\": {},\n\
         {pad}\"tx_per_sec\": {:.1},\n{pad}\"latency_mean_ms\": {:.3},\n\
         {pad}\"latency_p50_ms\": {:.3},\n{pad}\"latency_p90_ms\": {:.3},\n\
         {pad}\"latency_p99_ms\": {:.3},\n{pad}\"latency_p999_ms\": {:.3},\n\
         {pad}\"latency_max_ms\": {:.3},\n\
         {pad}\"transport_stats\": {{\"sent\": {}, \"received\": {}, \"dropped\": {}, \
         \"writev_calls\": {}, \"frames_coalesced\": {}, \"flushes_idle\": {}, \
         \"flushes_full\": {}}}{}",
        point.elapsed,
        point.committed,
        point.tps,
        point.mean_ms,
        point.p50_ms,
        point.p90_ms,
        point.p99_ms,
        point.p999_ms,
        point.max_ms,
        t.sent,
        t.received,
        t.dropped,
        t.writev_calls,
        t.frames_coalesced,
        t.flushes_idle,
        t.flushes_full,
        match &point.profile {
            Some(snap) => format!(",\n{}", loop_profile_json(snap, indent)),
            None => String::new(),
        },
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("peak_net: {message}");
            eprintln!(
                "usage: peak_net [--servers N] [--clients N] [--concurrency N] [--batch N] \
                 [--payload BYTES] [--pipeline N] [--verify-workers N] [--apply-workers N] \
                 [--warmup SECS] [--duration SECS] [--durable] [--tcp] [--sweep] \
                 [--sweep-pipeline A,B,..] [--sweep-verify A,B,..] \
                 [--checkpoint-interval N] [--no-profile] [--out PATH]"
            );
            std::process::exit(1);
        }
    };

    let baseline = baseline_tps(&opts.out);
    let transport = if opts.tcp { "tcp" } else { "loopback" };
    let cpu_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The grid: the committed-config point always runs (first), so the
    // top-level report fields — what the baseline comparison and the CI
    // floor read — describe the same configuration on every invocation.
    // In sweep mode the remaining `pipeline × verify_workers` combinations
    // follow.
    let mut grid: Vec<(usize, usize)> = vec![(opts.pipeline, opts.verify_workers)];
    if opts.sweep {
        for &p in &opts.sweep_pipeline {
            for &w in &opts.sweep_verify {
                if !grid.contains(&(p, w)) {
                    grid.push((p, w));
                }
            }
        }
    }

    eprintln!(
        "peak_net: {} servers, {} clients (concurrency {}), batch {}, payload {}B, \
         transport {transport}, {} cores, durable {}; {} point(s): {:?}",
        opts.servers,
        opts.clients,
        opts.concurrency,
        opts.batch_size,
        opts.payload,
        cpu_cores,
        opts.durable,
        grid.len(),
        grid
    );

    let mut points = Vec::with_capacity(grid.len());
    for &(pipeline, verify_workers) in &grid {
        eprintln!(
            "peak_net: measuring pipeline {pipeline}, verify workers {verify_workers} \
             ({:.1}s warmup + {:.1}s window)...",
            opts.warmup_s, opts.duration_s
        );
        let point = run_point(&opts, pipeline, verify_workers);
        match &point.profile {
            Some(snap) => eprintln!(
                "peak_net:   -> {:.0} tx/s, p50 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms \
                 (profile coverage {:.0}%)",
                point.tps,
                point.p50_ms,
                point.p99_ms,
                point.p999_ms,
                snap.coverage() * 100.0
            ),
            None => eprintln!(
                "peak_net:   -> {:.0} tx/s, p50 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms",
                point.tps, point.p50_ms, point.p99_ms, point.p999_ms
            ),
        }
        points.push(point);
    }
    let committed_point = &points[0];
    let best = points
        .iter()
        .max_by(|a, b| a.tps.total_cmp(&b.tps))
        .expect("at least one point");

    let storage_json = match &committed_point.storage {
        Some((wal_bytes, fsyncs, checkpoints, gc_pruned, stable)) => format!(
            "  \"durable\": true,\n  \"checkpoint_interval\": {},\n  \
             \"wal_bytes\": {wal_bytes},\n  \"fsyncs\": {fsyncs},\n  \
             \"checkpoint_count\": {checkpoints},\n  \"gc_pruned_keys\": {gc_pruned},\n  \
             \"stable_checkpoint\": {stable},\n",
            opts.checkpoint_interval
        ),
        None => "  \"durable\": false,\n".to_string(),
    };
    let sweep_json = if opts.sweep {
        let entries: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"pipeline_depth\": {},\n      \"verify_workers\": {},\n\
                     {}\n    }}",
                    p.pipeline,
                    p.verify_workers,
                    metrics_json(p, 6)
                )
            })
            .collect();
        format!(
            ",\n  \"best_pipeline_depth\": {},\n  \"best_verify_workers\": {},\n  \
             \"best_tx_per_sec\": {:.1},\n  \"sweep\": [\n{}\n  ]",
            best.pipeline,
            best.verify_workers,
            best.tps,
            entries.join(",\n")
        )
    } else {
        String::new()
    };
    let report = format!(
        "{{\n  \"bench\": \"peak_net\",\n  \"transport\": \"{transport}\",\n  \
         \"servers\": {},\n  \"clients\": {},\n  \"concurrency\": {},\n  \
         \"batch_size\": {},\n  \"payload_bytes\": {},\n  \
         \"pipeline_depth\": {},\n  \"verify_workers\": {},\n  \"apply_workers\": {},\n  \
         \"cpu_cores\": {cpu_cores},\n{}{}{}\n}}\n",
        opts.servers,
        opts.clients,
        opts.concurrency,
        opts.batch_size,
        opts.payload,
        committed_point.pipeline,
        committed_point.verify_workers,
        opts.apply_workers,
        storage_json,
        metrics_json(committed_point, 2),
        sweep_json,
    );
    print!("{report}");
    if let Err(e) = std::fs::write(&opts.out, &report) {
        eprintln!("peak_net: failed to write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!(
        "peak_net: {} tx in {:.1}s -> {:.0} tx/s (written to {})",
        committed_point.committed, committed_point.elapsed, committed_point.tps, opts.out
    );
    if opts.sweep {
        eprintln!(
            "peak_net: best point pipeline {}, verify workers {} -> {:.0} tx/s",
            best.pipeline, best.verify_workers, best.tps
        );
    }
    match baseline {
        Some(before) if before > 0.0 => eprintln!(
            "peak_net: baseline in {} was {before:.0} tx/s -> now {:.0} tx/s ({:+.1}%)",
            opts.out,
            committed_point.tps,
            (committed_point.tps - before) / before * 100.0
        ),
        _ => eprintln!(
            "peak_net: no committed baseline in {} to compare against",
            opts.out
        ),
    }
    if committed_point.committed == 0 {
        eprintln!("peak_net: cluster committed nothing — hot path regression?");
        std::process::exit(2);
    }
}
