//! `peak_net` — drive a loopback PrestigeBFT cluster to saturation and record
//! the peak throughput/latency of the real networking runtime.
//!
//! This is the perf baseline every hot-path PR measures against: it launches
//! `--servers` PrestigeBFT replicas plus `--clients` closed-loop clients on
//! real node runtimes (threads, timers, the full `Transport` stack), runs a
//! warmup followed by a measurement window, and writes the result as JSON:
//!
//! ```text
//! cargo run --release -p prestige-net --bin peak_net -- --duration 10
//! cat BENCH_peak.json
//! ```
//!
//! Fields: committed transactions per second over the measurement window and
//! the client-observed end-to-end commit latency (mean / p50 / p99, ms).

use prestige_core::ClientStats;
use prestige_net::cluster::{LocalCluster, StoragePlan};
use prestige_types::{ClientId, ClusterConfig, ServerId};
use std::time::{Duration, Instant};

struct Options {
    servers: u32,
    clients: u64,
    concurrency: usize,
    batch_size: usize,
    payload: usize,
    pipeline: usize,
    verify_workers: usize,
    warmup_s: f64,
    duration_s: f64,
    durable: bool,
    checkpoint_interval: u64,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            servers: 4,
            clients: 4,
            concurrency: 512,
            batch_size: 500,
            payload: 32,
            // Defaults tuned for the 1-core benchmark container: a deep-ish
            // window and inline verification (worker threads only pay off
            // when there are spare cores — pass --verify-workers N to use
            // them).
            pipeline: 8,
            verify_workers: 0,
            warmup_s: 2.0,
            duration_s: 10.0,
            durable: false,
            checkpoint_interval: 64,
            out: "BENCH_peak.json".to_string(),
        }
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 1;
    while i < args.len() {
        let need = |name: &str| -> Result<&String, String> {
            args.get(i + 1).ok_or(format!("{name} needs a value"))
        };
        match args[i].as_str() {
            "--servers" => opts.servers = need("--servers")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => opts.clients = need("--clients")?.parse().map_err(|e| format!("{e}"))?,
            "--concurrency" => {
                opts.concurrency = need("--concurrency")?.parse().map_err(|e| format!("{e}"))?
            }
            "--batch" => opts.batch_size = need("--batch")?.parse().map_err(|e| format!("{e}"))?,
            "--payload" => opts.payload = need("--payload")?.parse().map_err(|e| format!("{e}"))?,
            "--pipeline" => {
                opts.pipeline = need("--pipeline")?.parse().map_err(|e| format!("{e}"))?
            }
            "--verify-workers" => {
                opts.verify_workers = need("--verify-workers")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--warmup" => opts.warmup_s = need("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                opts.duration_s = need("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--durable" => {
                opts.durable = true;
                i -= 1; // flag takes no value
            }
            "--checkpoint-interval" => {
                opts.checkpoint_interval = need("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--out" => opts.out = need("--out")?.clone(),
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 2;
    }
    Ok(opts)
}

fn total_committed(stats: &[ClientStats]) -> u64 {
    stats.iter().map(|s| s.committed_tx).sum()
}

/// Pulls `"tx_per_sec": <value>` out of a previously written report, so the
/// run can print a before/after comparison against the committed baseline.
fn baseline_tps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let tail = text.split("\"tx_per_sec\":").nth(1)?;
    tail.split([',', '}']).next()?.trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("peak_net: {message}");
            eprintln!(
                "usage: peak_net [--servers N] [--clients N] [--concurrency N] [--batch N] \
                 [--payload BYTES] [--pipeline N] [--verify-workers N] [--warmup SECS] \
                 [--duration SECS] [--durable] [--checkpoint-interval N] [--out PATH]"
            );
            std::process::exit(1);
        }
    };

    let baseline = baseline_tps(&opts.out);
    let mut config = ClusterConfig::new(opts.servers)
        .with_batch_size(opts.batch_size)
        .with_payload_size(opts.payload)
        .with_pipeline_depth(opts.pipeline)
        .with_verify_workers(opts.verify_workers);
    if opts.durable {
        config = config.with_checkpoint_interval(opts.checkpoint_interval);
    }
    eprintln!(
        "peak_net: launching {} servers, {} clients (concurrency {}), batch {}, payload {}B, \
         pipeline {}, verify workers {}, durable {}",
        opts.servers,
        opts.clients,
        opts.concurrency,
        opts.batch_size,
        opts.payload,
        config.pipeline_depth,
        config.verify_workers,
        opts.durable
    );
    // Durable mode: every server appends its commits to a real on-disk WAL
    // (fsync batched) and forms certified checkpoints — the measured delta
    // against the default in-memory run is the price of crash durability.
    let wal_root = opts.durable.then(|| {
        let root = std::env::temp_dir().join(format!("prestige-peak-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    });
    let cluster = match &wal_root {
        Some(root) => LocalCluster::launch_durable(
            config.clone(),
            7,
            opts.clients,
            opts.concurrency,
            StoragePlan::new(root.clone()),
        ),
        None => LocalCluster::launch(config.clone(), 7, opts.clients, opts.concurrency),
    };

    let snapshot = |c: &LocalCluster| -> Vec<ClientStats> {
        (0..opts.clients)
            .filter_map(|i| c.client_stats(ClientId(i)))
            .collect()
    };

    // Warmup: let leaders elect, batches fill, and queues reach steady
    // state; then reset latency accounting so the percentiles below cover
    // only the measurement window (the bounded sample buffers would
    // otherwise fill with warmup commits).
    std::thread::sleep(Duration::from_secs_f64(opts.warmup_s));
    cluster.reset_client_latency();
    let before = snapshot(&cluster);
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(opts.duration_s));
    let elapsed = t0.elapsed().as_secs_f64();
    let after = snapshot(&cluster);

    let committed = total_committed(&after).saturating_sub(total_committed(&before));
    let tps = committed as f64 / elapsed;

    // Storage-plane totals across servers (durable runs only), gathered
    // while the nodes are still alive.
    let storage_summary = opts.durable.then(|| {
        let mut wal_bytes = 0u64;
        let mut fsyncs = 0u64;
        let mut checkpoints = 0u64;
        let mut gc_pruned = 0u64;
        let mut stable = 0u64;
        for i in 0..opts.servers {
            let id = ServerId(i);
            if let Some(s) = cluster.storage_stats(id) {
                wal_bytes += s.wal_bytes;
                fsyncs += s.fsyncs;
            }
            if let Some((c, g)) = cluster.checkpoint_counters(id) {
                checkpoints += c;
                gc_pruned += g;
            }
            stable = stable.max(cluster.stable_checkpoint_of(id).unwrap_or(0));
        }
        (wal_bytes, fsyncs, checkpoints, gc_pruned, stable)
    });

    // Latency over the measurement window (accounting was reset at the
    // warmup boundary; samples are bounded per client).
    let final_stats = cluster.shutdown();
    if let Some(root) = &wal_root {
        let _ = std::fs::remove_dir_all(root);
    }
    let mut merged = ClientStats::default();
    for stats in final_stats.values() {
        merged.latency_sum_ms += stats.latency_sum_ms;
        merged.latency_count += stats.latency_count;
        merged.latency_samples.extend(&stats.latency_samples);
    }
    let cpu_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let storage_json = match &storage_summary {
        Some((wal_bytes, fsyncs, checkpoints, gc_pruned, stable)) => format!(
            "  \"durable\": true,\n  \"checkpoint_interval\": {},\n  \
             \"wal_bytes\": {wal_bytes},\n  \"fsyncs\": {fsyncs},\n  \
             \"checkpoint_count\": {checkpoints},\n  \"gc_pruned_keys\": {gc_pruned},\n  \
             \"stable_checkpoint\": {stable},\n",
            opts.checkpoint_interval
        ),
        None => "  \"durable\": false,\n".to_string(),
    };
    let report = format!(
        "{{\n  \"bench\": \"peak_net\",\n  \"transport\": \"loopback\",\n  \
         \"servers\": {},\n  \"clients\": {},\n  \"concurrency\": {},\n  \
         \"batch_size\": {},\n  \"payload_bytes\": {},\n  \
         \"pipeline_depth\": {},\n  \"verify_workers\": {},\n  \
         \"cpu_cores\": {},\n{}  \
         \"measured_seconds\": {:.3},\n  \"committed_tx\": {},\n  \
         \"tx_per_sec\": {:.1},\n  \"latency_mean_ms\": {:.3},\n  \
         \"latency_p50_ms\": {:.3},\n  \"latency_p99_ms\": {:.3}\n}}\n",
        opts.servers,
        opts.clients,
        opts.concurrency,
        opts.batch_size,
        opts.payload,
        config.pipeline_depth,
        config.verify_workers,
        cpu_cores,
        storage_json,
        elapsed,
        committed,
        tps,
        merged.mean_latency_ms(),
        merged.percentile_latency_ms(50.0),
        merged.percentile_latency_ms(99.0),
    );
    print!("{report}");
    if let Err(e) = std::fs::write(&opts.out, &report) {
        eprintln!("peak_net: failed to write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!(
        "peak_net: {committed} tx in {elapsed:.1}s -> {tps:.0} tx/s (written to {})",
        opts.out
    );
    match baseline {
        Some(before) if before > 0.0 => eprintln!(
            "peak_net: baseline in {} was {before:.0} tx/s -> now {tps:.0} tx/s ({:+.1}%)",
            opts.out,
            (tps - before) / before * 100.0
        ),
        _ => eprintln!(
            "peak_net: no committed baseline in {} to compare against",
            opts.out
        ),
    }
    if committed == 0 {
        eprintln!("peak_net: cluster committed nothing — hot path regression?");
        std::process::exit(2);
    }
}
