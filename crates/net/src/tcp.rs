//! TCP transport: real sockets, an event-driven writer loop with vectored
//! writes, bounded backpressure.
//!
//! Topology: every node listens on one address. Inbound connections are
//! accepted by a listener thread; each accepted connection gets a reader
//! thread that decodes frames (see [`crate::frame`]) and funnels them into
//! the node's single inbound queue. The sender identity travels inside each
//! frame, so connection direction is irrelevant to the protocol and node
//! restarts need no handshake state.
//!
//! Outbound is a **single readiness-driven writer thread** for all peers
//! (replacing the earlier thread-per-peer fan-out):
//!
//! * every peer has a frame deque and a nonblocking socket; the writer
//!   drains each deque with `write_vectored`, so a backlog of many small
//!   frames costs one syscall per `MAX_IOV` frames instead of one each;
//! * flushing is **adaptive by construction**: an idle connection writes
//!   each frame the moment it is enqueued (protecting p50 latency), while a
//!   loaded one naturally accumulates a backlog between scheduler slots and
//!   coalesces it (protecting throughput). Both paths are counted
//!   (`flushes_idle` / `flushes_full` in [`TransportStats`]);
//! * when a socket's send buffer fills (`WouldBlock`), the writer parks the
//!   peer and waits for writability with `poll(2)` (bounded at 1 ms so new
//!   enqueues are never starved) instead of spinning;
//! * connects happen on short-lived connector threads so the writer never
//!   blocks in `connect`; queued frames **survive** an unreachable peer
//!   (capped-backoff retry) — only per-peer queue overflow sheds, newest
//!   first, keeping memory bounded and making shed order deterministic.
//!
//! The async-runtime note: the container this repository builds in has no
//! crates.io access, so tokio/mio cannot be used; readiness is a hand-rolled
//! `poll(2)` call on Linux (a sub-millisecond sleep elsewhere). The
//! [`Transport`] trait is the seam where a tokio implementation would slot
//! in unchanged.

use crate::frame::{BufferPool, FrameCodec};
use crate::transport::{
    warn_drop, warn_inbound_drop, Transport, TransportStats, DEFAULT_QUEUE_CAPACITY,
};
use prestige_types::Actor;
use std::collections::{HashMap, VecDeque};
use std::io::{IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A complete, pre-encoded wire frame shared between the encoding thread and
/// the writer loop. Produced once per broadcast, no matter how many peers it
/// fans out to.
type SharedFrame = Arc<[u8]>;

/// One outbound item handed to the writer loop.
///
/// Unicast messages travel unencoded and are serialized by the writer thread
/// into a reused scratch buffer — keeping serialization off the protocol
/// event loop. Broadcasts arrive as a pre-encoded [`SharedFrame`]: one
/// serialization on the caller, a refcount bump per peer.
enum Outbound<M> {
    /// A unicast message, encoded by the writer thread.
    Message(M),
    /// Shared pre-encoded bytes (broadcast fan-out).
    Frame(SharedFrame),
}

/// Commands flowing into the writer loop.
enum WriterCmd<M> {
    /// Enqueue one item for `to`.
    Send { to: Actor, item: Outbound<M> },
    /// A connector thread finished successfully.
    Connected { to: Actor, stream: TcpStream },
    /// A connector thread failed; back off before retrying.
    ConnectFailed { to: Actor },
}

/// Initial reconnect backoff; doubles per failure up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Reconnect backoff cap.
const MAX_BACKOFF: Duration = Duration::from_secs(2);
/// Most frames coalesced into one `write_vectored` call.
const MAX_IOV: usize = 64;
/// Upper bound on one `poll(2)` wait for socket writability: short enough
/// that freshly enqueued frames for *other* peers are picked up promptly.
const POLL_WAIT: Duration = Duration::from_millis(1);
/// Writer idle wait when nothing is queued anywhere.
const IDLE_WAIT: Duration = Duration::from_millis(100);

/// Configuration of a TCP endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Address to accept peer connections on.
    pub listen: SocketAddr,
    /// Addresses of every peer this node may send to.
    pub peers: HashMap<Actor, SocketAddr>,
    /// Per-peer outbound queue capacity (frames).
    pub queue_capacity: usize,
    /// Frame codec (wire version and max-frame guard).
    pub codec: FrameCodec,
}

impl TcpConfig {
    /// A config with default queue capacity and codec.
    pub fn new(listen: SocketAddr, peers: HashMap<Actor, SocketAddr>) -> Self {
        TcpConfig {
            listen,
            peers,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            codec: FrameCodec::new(),
        }
    }
}

/// A TCP endpoint implementing [`Transport`] for any serde-encodable message
/// type.
pub struct TcpTransport<M: serde::Serialize + serde::Deserialize + Send + 'static> {
    me: Actor,
    config: TcpConfig,
    inbound_rx: Receiver<(Actor, M)>,
    /// Command channel into the writer loop (`None` once shut down).
    cmd_tx: Option<Sender<WriterCmd<M>>>,
    /// Shared per-peer backlog gauges: incremented at enqueue, decremented by
    /// the writer once a frame is written (or torn on a broken connection).
    /// The send path sheds *before* enqueueing when a gauge is at capacity,
    /// so per-peer memory stays bounded without any queue lock.
    backlog: HashMap<Actor, Arc<AtomicUsize>>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    writer_join: Option<JoinHandle<()>>,
    listener_join: Option<JoinHandle<()>>,
    /// Scratch buffers reused across frame encodings.
    encode_pool: BufferPool,
}

impl<M: serde::Serialize + serde::Deserialize + Send + 'static> TcpTransport<M> {
    /// Binds the listen address and starts the accept loop and the writer
    /// loop. Outbound connections are established lazily on first send to
    /// each peer.
    pub fn bind(me: Actor, mut config: TcpConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.listen)?;
        // Record the OS-assigned address so port-0 binds are discoverable.
        config.listen = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (inbound_tx, inbound_rx) = sync_channel(config.queue_capacity);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(TransportStats::default());

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_stats = Arc::clone(&stats);
        let accept_codec = config.codec;
        let listener_join = std::thread::Builder::new()
            .name(format!("tcp-accept-{me}"))
            .spawn(move || {
                accept_loop(
                    me,
                    listener,
                    inbound_tx,
                    accept_codec,
                    accept_shutdown,
                    accept_stats,
                )
            })
            .expect("spawn accept thread");

        let backlog: HashMap<Actor, Arc<AtomicUsize>> = config
            .peers
            .keys()
            .map(|&peer| (peer, Arc::new(AtomicUsize::new(0))))
            .collect();
        let (cmd_tx, cmd_rx) = channel();
        let writer = WriterLoop {
            me,
            codec: config.codec,
            cmd_rx,
            cmd_tx: cmd_tx.clone(),
            peers: config
                .peers
                .iter()
                .map(|(&peer, &addr)| (peer, PeerState::new(addr, Arc::clone(&backlog[&peer]))))
                .collect(),
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
            scratch: Vec::new(),
        };
        let writer_join = std::thread::Builder::new()
            .name(format!("tcp-writer-{me}"))
            .spawn(move || writer.run())
            .expect("spawn writer thread");

        Ok(TcpTransport {
            me,
            config,
            inbound_rx,
            cmd_tx: Some(cmd_tx),
            backlog,
            stats,
            shutdown,
            writer_join: Some(writer_join),
            listener_join: Some(listener_join),
            encode_pool: BufferPool::new(),
        })
    }

    /// The actual bound listen address (the OS-assigned port when the
    /// config requested port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.config.listen
    }

    /// Queues one outbound item towards `to`, counting and warning on drop.
    fn queue_outbound(&mut self, to: Actor, item: Outbound<M>) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let Some(gauge) = self.backlog.get(&to) else {
            // Unknown peer: no address configured.
            let total = self.stats.note_drop(to);
            warn_drop(&self.stats, self.me, to, "no address configured", total);
            return;
        };
        // Bounded backpressure: shed the *newest* frame when the peer's
        // backlog is at capacity, exactly like the old bounded queue did.
        if gauge.load(Ordering::Relaxed) >= self.config.queue_capacity {
            let total = self.stats.note_drop(to);
            warn_drop(&self.stats, self.me, to, "outbound queue full", total);
            return;
        }
        gauge.fetch_add(1, Ordering::Relaxed);
        let sent = self
            .cmd_tx
            .as_ref()
            .is_some_and(|tx| tx.send(WriterCmd::Send { to, item }).is_ok());
        if !sent {
            gauge.fetch_sub(1, Ordering::Relaxed);
            let total = self.stats.note_drop(to);
            warn_drop(&self.stats, self.me, to, "writer gone", total);
        }
    }
}

impl<M: serde::Serialize + serde::Deserialize + Send + 'static> Transport<M> for TcpTransport<M> {
    fn me(&self) -> Actor {
        self.me
    }

    fn send(&mut self, to: Actor, message: M) {
        // Unicast: hand the message to the writer thread unencoded, so
        // serialization stays off the protocol event loop.
        self.queue_outbound(to, Outbound::Message(message));
    }

    fn broadcast(&mut self, recipients: &[Actor], message: M)
    where
        M: Clone,
    {
        // Encode exactly once; every peer deque receives the same shared
        // bytes. This is the leader→replica hot path: fan-out cost is one
        // serialization plus one refcount bump per peer.
        match self
            .config
            .codec
            .encode_shared(self.me, &message, &self.encode_pool)
        {
            Ok(frame) => {
                for &to in recipients {
                    self.queue_outbound(to, Outbound::Frame(Arc::clone(&frame)));
                }
            }
            Err(_) => {
                for &to in recipients {
                    self.stats.sent.fetch_add(1, Ordering::Relaxed);
                    let total = self.stats.note_drop(to);
                    warn_drop(&self.stats, self.me, to, "frame encoding failed", total);
                }
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(Actor, M)> {
        match self.inbound_rx.recv_timeout(timeout) {
            Ok(delivery) => {
                self.stats.received.fetch_add(1, Ordering::Relaxed);
                Some(delivery)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Disconnecting the command channel wakes the writer immediately.
        drop(self.cmd_tx.take());
        if let Some(join) = self.writer_join.take() {
            let _ = join.join();
        }
        if let Some(join) = self.listener_join.take() {
            let _ = join.join();
        }
    }
}

impl<M: serde::Serialize + serde::Deserialize + Send + 'static> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<M: serde::Deserialize + Send + 'static>(
    me: Actor,
    listener: TcpListener,
    inbound: SyncSender<(Actor, M)>,
    codec: FrameCodec,
    shutdown: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer_addr)) => {
                let _ = stream.set_nodelay(true);
                let inbound = inbound.clone();
                let reader_shutdown = Arc::clone(&shutdown);
                let reader_stats = Arc::clone(&stats);
                let join = std::thread::Builder::new()
                    .name("tcp-read".to_string())
                    .spawn(move || {
                        read_loop(me, stream, inbound, codec, reader_shutdown, reader_stats)
                    })
                    .expect("spawn reader thread");
                readers.push(join);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
        // Reap readers whose connections have closed, so reconnect churn
        // from flaky peers does not grow the handle list without bound.
        readers.retain(|join| !join.is_finished());
    }
    for join in readers {
        let _ = join.join();
    }
}

fn read_loop<M: serde::Deserialize + Send + 'static>(
    me: Actor,
    mut stream: TcpStream,
    inbound: SyncSender<(Actor, M)>,
    codec: FrameCodec,
    shutdown: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
) {
    use std::io::Read;
    // Bound the blocking read so the thread notices shutdown. Partial frames
    // are accumulated in `buf` and decoded with the streaming decoder, so a
    // timeout mid-frame never loses bytes or desyncs the stream.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    while !shutdown.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match codec.decode::<M>(&buf) {
                        Ok(Some((from, message, used))) => {
                            buf.drain(..used);
                            // Backpressure: a full inbound queue sheds the
                            // message, same policy as the loopback transport.
                            // The shed is attributed to the sending peer (as
                            // an inbound drop) and surfaced, rate-limited,
                            // rather than silent.
                            if inbound.try_send((from, message)).is_err() {
                                let total = stats.note_inbound_drop(from);
                                warn_inbound_drop(&stats, me, from, "inbound queue full", total);
                            }
                        }
                        Ok(None) => break, // need more bytes
                        Err(_) => return,  // corrupt stream: drop connection
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Writer loop
// ---------------------------------------------------------------------------

/// Per-peer outbound state owned by the writer loop.
struct PeerState {
    addr: SocketAddr,
    /// Established nonblocking connection, if any.
    stream: Option<TcpStream>,
    /// Frames awaiting write, oldest first.
    queue: VecDeque<SharedFrame>,
    /// Bytes of `queue[0]` already written (a partial vectored write).
    partial: usize,
    /// Shared with the send path for enqueue-time shedding.
    gauge: Arc<AtomicUsize>,
    /// A connector thread is in flight.
    connecting: bool,
    /// Current reconnect backoff.
    backoff: Duration,
    /// Earliest next connect attempt.
    retry_at: Instant,
    /// The socket returned `WouldBlock`; wait for writability before
    /// retrying.
    blocked: bool,
}

impl PeerState {
    fn new(addr: SocketAddr, gauge: Arc<AtomicUsize>) -> Self {
        PeerState {
            addr,
            stream: None,
            queue: VecDeque::new(),
            partial: 0,
            gauge,
            connecting: false,
            backoff: INITIAL_BACKOFF,
            retry_at: Instant::now(),
            blocked: false,
        }
    }
}

struct WriterLoop<M> {
    me: Actor,
    codec: FrameCodec,
    cmd_rx: Receiver<WriterCmd<M>>,
    /// Handed to connector threads so they can report back.
    cmd_tx: Sender<WriterCmd<M>>,
    peers: HashMap<Actor, PeerState>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    /// Scratch buffer reused across unicast encodings.
    scratch: Vec<u8>,
}

impl<M: serde::Serialize + Send + 'static> WriterLoop<M> {
    fn run(mut self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // 1) Drain every pending command without blocking.
            let mut disconnected = false;
            loop {
                match self.cmd_rx.try_recv() {
                    Ok(cmd) => self.handle_cmd(cmd),
                    Err(std::sync::mpsc::TryRecvError::Empty) => break,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            // 2) Service every peer: connect if needed, flush what we can.
            let now = Instant::now();
            let peer_ids: Vec<Actor> = self.peers.keys().copied().collect();
            for peer in peer_ids {
                self.service_peer(peer, now);
            }
            if disconnected && self.peers.values().all(|p| p.queue.is_empty()) {
                return; // Transport dropped and everything flushed.
            }
            // 3) Wait for the next event: new commands, socket writability,
            //    or a reconnect timer.
            self.wait(disconnected);
        }
    }

    fn handle_cmd(&mut self, cmd: WriterCmd<M>) {
        match cmd {
            WriterCmd::Send { to, item } => {
                let frame: Option<SharedFrame> = match item {
                    Outbound::Frame(frame) => Some(frame),
                    Outbound::Message(message) => {
                        if self
                            .codec
                            .encode_into(self.me, &message, &mut self.scratch)
                            .is_ok()
                        {
                            Some(Arc::from(self.scratch.as_slice()))
                        } else {
                            None
                        }
                    }
                };
                let Some(state) = self.peers.get_mut(&to) else {
                    return; // Send path never enqueues unknown peers.
                };
                match frame {
                    Some(frame) => state.queue.push_back(frame),
                    None => {
                        // Oversize unicast payload: counted, never silent.
                        state.gauge.fetch_sub(1, Ordering::Relaxed);
                        let total = self.stats.note_drop(to);
                        warn_drop(&self.stats, self.me, to, "frame encoding failed", total);
                    }
                }
            }
            WriterCmd::Connected { to, stream } => {
                if let Some(state) = self.peers.get_mut(&to) {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    state.stream = Some(stream);
                    state.connecting = false;
                    state.backoff = INITIAL_BACKOFF;
                    state.blocked = false;
                }
            }
            WriterCmd::ConnectFailed { to } => {
                if let Some(state) = self.peers.get_mut(&to) {
                    state.connecting = false;
                    state.retry_at = Instant::now() + state.backoff;
                    state.backoff = (state.backoff * 2).min(MAX_BACKOFF);
                }
            }
        }
    }

    /// Connects (via a connector thread) and/or flushes one peer.
    fn service_peer(&mut self, peer: Actor, now: Instant) {
        let state = self.peers.get_mut(&peer).expect("peer state present");
        if state.queue.is_empty() {
            return;
        }
        if state.stream.is_none() {
            // Unlike the old thread-per-peer design, frames queued towards an
            // unreachable peer are *kept* across failed connect attempts —
            // only queue overflow sheds. Kick off a connector if none is in
            // flight and the backoff window has passed.
            if !state.connecting && now >= state.retry_at {
                state.connecting = true;
                let cmd_tx = self.cmd_tx.clone();
                let addr = state.addr;
                std::thread::Builder::new()
                    .name(format!("tcp-connect-{}-to-{peer}", self.me))
                    .spawn(move || {
                        let cmd =
                            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                                Ok(stream) => WriterCmd::Connected { to: peer, stream },
                                Err(_) => WriterCmd::ConnectFailed { to: peer },
                            };
                        let _ = cmd_tx.send(cmd);
                    })
                    .expect("spawn connector thread");
            }
            return;
        }
        self.flush_peer(peer);
    }

    /// Writes as much of `peer`'s queue as the socket accepts, coalescing up
    /// to [`MAX_IOV`] frames per `write_vectored` syscall.
    fn flush_peer(&mut self, peer: Actor) {
        let state = self.peers.get_mut(&peer).expect("peer state present");
        let Some(stream) = state.stream.as_mut() else {
            return;
        };
        if state.queue.len() == 1 {
            self.stats.flushes_idle.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.flushes_full.fetch_add(1, Ordering::Relaxed);
        }
        state.blocked = false;
        loop {
            if state.queue.is_empty() {
                return;
            }
            let mut slices: Vec<IoSlice> = Vec::with_capacity(state.queue.len().min(MAX_IOV));
            slices.push(IoSlice::new(&state.queue[0][state.partial..]));
            for frame in state.queue.iter().skip(1).take(MAX_IOV - 1) {
                slices.push(IoSlice::new(frame));
            }
            let iov = slices.len();
            match stream.write_vectored(&slices) {
                Ok(mut written) => {
                    self.stats.writev_calls.fetch_add(1, Ordering::Relaxed);
                    if iov > 1 {
                        self.stats
                            .frames_coalesced
                            .fetch_add(iov as u64, Ordering::Relaxed);
                    }
                    // Retire fully written frames; remember the offset into a
                    // partially written head.
                    while written > 0 {
                        let head_left = state.queue[0].len() - state.partial;
                        if written >= head_left {
                            written -= head_left;
                            state.partial = 0;
                            state.queue.pop_front();
                            state.gauge.fetch_sub(1, Ordering::Relaxed);
                        } else {
                            state.partial += written;
                            written = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Socket buffer full: park until `poll` reports
                    // writability.
                    state.blocked = true;
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Broken connection. A half-written head frame is torn on
                    // the wire and must not be resumed on a fresh connection;
                    // it is the only frame lost — the rest of the queue rides
                    // the reconnect.
                    if state.partial > 0 {
                        state.partial = 0;
                        state.queue.pop_front();
                        state.gauge.fetch_sub(1, Ordering::Relaxed);
                        let total = self.stats.note_drop(peer);
                        warn_drop(&self.stats, self.me, peer, "connection broken", total);
                    }
                    state.stream = None;
                    state.retry_at = Instant::now();
                    return;
                }
            }
        }
    }

    /// Blocks until there is plausibly more work: a command arrives, a
    /// blocked socket may have drained, or a reconnect backoff expires.
    fn wait(&mut self, cmd_channel_gone: bool) {
        let now = Instant::now();
        let blocked: Vec<&TcpStream> = self
            .peers
            .values()
            .filter(|p| p.blocked && !p.queue.is_empty())
            .filter_map(|p| p.stream.as_ref())
            .collect();
        if !blocked.is_empty() {
            // Readiness wait on the write-blocked sockets, bounded so new
            // commands are picked up within a millisecond.
            poll::wait_writable(&blocked, POLL_WAIT);
            return;
        }
        // Nothing write-blocked: sleep on the command channel until the next
        // reconnect deadline (or idle).
        let mut wait = IDLE_WAIT;
        for state in self.peers.values() {
            if !state.queue.is_empty() && state.stream.is_none() && !state.connecting {
                let until = state.retry_at.saturating_duration_since(now);
                wait = wait.min(until.max(Duration::from_millis(1)));
            }
        }
        if cmd_channel_gone {
            // Channel is disconnected; recv would return immediately forever.
            std::thread::sleep(wait.min(Duration::from_millis(5)));
            return;
        }
        match self.cmd_rx.recv_timeout(wait) {
            Ok(cmd) => self.handle_cmd(cmd),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
        }
    }
}

/// Minimal readiness support: `poll(2)` on Linux, a bounded sleep elsewhere.
/// Hand-rolled because the offline build has no `libc`/`mio`; the writer
/// only ever needs "may I write again?" with a small timeout.
mod poll {
    use std::net::TcpStream;
    use std::time::Duration;

    #[cfg(target_os = "linux")]
    pub fn wait_writable(streams: &[&TcpStream], timeout: Duration) {
        use std::os::unix::io::AsRawFd;

        #[repr(C)]
        struct PollFd {
            fd: i32,
            events: i16,
            revents: i16,
        }
        const POLLOUT: i16 = 0x004;
        extern "C" {
            fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        }

        let mut fds: Vec<PollFd> = streams
            .iter()
            .map(|s| PollFd {
                fd: s.as_raw_fd(),
                events: POLLOUT,
                revents: 0,
            })
            .collect();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is a live, correctly sized array of repr(C) pollfd
        // structs for the duration of the call; `poll` does not retain the
        // pointer past its return.
        unsafe {
            poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms);
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub fn wait_writable(_streams: &[&TcpStream], timeout: Duration) {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::{Message, ServerId, SyncKind};

    fn server(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    fn msg(n: u64) -> Message {
        Message::SyncReq {
            kind: SyncKind::Transaction,
            from: n,
            to: n,
        }
    }

    fn localhost(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    /// Picks two free ports by binding port 0 and releasing.
    fn two_free_ports() -> (SocketAddr, SocketAddr) {
        let a = TcpListener::bind(localhost(0)).unwrap();
        let b = TcpListener::bind(localhost(0)).unwrap();
        (a.local_addr().unwrap(), b.local_addr().unwrap())
    }

    #[test]
    fn frames_travel_between_two_tcp_endpoints() {
        let (addr_a, addr_b) = two_free_ports();
        let peers_a = HashMap::from([(server(1), addr_b)]);
        let peers_b = HashMap::from([(server(0), addr_a)]);
        let mut a: TcpTransport<Message> =
            TcpTransport::bind(server(0), TcpConfig::new(addr_a, peers_a)).unwrap();
        let mut b: TcpTransport<Message> =
            TcpTransport::bind(server(1), TcpConfig::new(addr_b, peers_b)).unwrap();

        for i in 0..10 {
            a.send(server(1), msg(i));
        }
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 10 && std::time::Instant::now() < deadline {
            if let Some((from, m)) = b.recv_timeout(Duration::from_millis(100)) {
                assert_eq!(from, server(0));
                got.push(m);
            }
        }
        assert_eq!(got.len(), 10, "all frames must arrive in order");
        assert_eq!(got[0], msg(0));
        assert_eq!(got[9], msg(9));
        let (writev, _, idle, full) = a.stats().writer_snapshot();
        assert!(writev > 0, "writes must go through the vectored path");
        assert!(idle + full > 0, "every flush is classified idle or full");
    }

    #[test]
    fn outbound_queue_survives_peer_coming_up_late() {
        let (addr_a, addr_b) = two_free_ports();
        let peers_a = HashMap::from([(server(1), addr_b)]);
        let mut a: TcpTransport<Message> =
            TcpTransport::bind(server(0), TcpConfig::new(addr_a, peers_a)).unwrap();

        // Send before the peer exists: the writer retries with backoff and
        // the frames survive the unreachable window (only overflow sheds).
        for i in 0..5 {
            a.send(server(1), msg(i));
        }
        std::thread::sleep(Duration::from_millis(150));
        let peers_b = HashMap::from([(server(0), addr_a)]);
        let mut b: TcpTransport<Message> =
            TcpTransport::bind(server(1), TcpConfig::new(addr_b, peers_b)).unwrap();

        a.send(server(1), msg(99));
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while got.len() < 6 && std::time::Instant::now() < deadline {
            if let Some((_, m)) = b.recv_timeout(Duration::from_millis(100)) {
                got.push(m);
            }
        }
        let expected: Vec<Message> = (0..5).map(msg).chain([msg(99)]).collect();
        assert_eq!(
            got, expected,
            "every queued frame must arrive, in order, once the peer is up"
        );
        assert_eq!(a.stats().snapshot().2, 0, "nothing may be shed");
    }

    #[test]
    fn send_to_unconfigured_peer_counts_as_drop() {
        let (addr_a, _) = two_free_ports();
        let mut a: TcpTransport<Message> =
            TcpTransport::bind(server(0), TcpConfig::new(addr_a, HashMap::new())).unwrap();
        a.send(server(9), msg(1));
        assert_eq!(a.stats().snapshot(), (1, 0, 1));
    }

    #[test]
    fn overflow_sheds_newest_and_keeps_oldest() {
        let (addr_a, addr_b) = two_free_ports();
        let peers_a = HashMap::from([(server(1), addr_b)]);
        let mut config = TcpConfig::new(addr_a, peers_a);
        config.queue_capacity = 4;
        let mut a: TcpTransport<Message> = TcpTransport::bind(server(0), config).unwrap();

        // No listener on addr_b yet: connects fail, frames queue. The first
        // `capacity` sends are retained, everything after sheds (newest
        // first) — deterministically, because nothing can drain the queue.
        for i in 0..10 {
            a.send(server(1), msg(i));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while a.stats().snapshot().2 < 6 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            a.stats().snapshot(),
            (10, 0, 6),
            "exactly the overflow sheds"
        );

        // Bring the peer up: exactly the four oldest frames arrive, in order.
        let peers_b = HashMap::from([(server(0), addr_a)]);
        let mut b: TcpTransport<Message> =
            TcpTransport::bind(server(1), TcpConfig::new(addr_b, peers_b)).unwrap();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while got.len() < 4 && std::time::Instant::now() < deadline {
            if let Some((_, m)) = b.recv_timeout(Duration::from_millis(100)) {
                got.push(m);
            }
        }
        let expected: Vec<Message> = (0..4).map(msg).collect();
        assert_eq!(got, expected, "the oldest frames survive, in order");
        assert!(
            b.recv_timeout(Duration::from_millis(300)).is_none(),
            "shed frames must not materialize later"
        );
    }

    #[test]
    fn coalesced_wire_bytes_equal_non_coalesced_encoding() {
        use std::io::Read;

        // A raw listener stands in for the peer so the test can capture the
        // exact bytes on the wire.
        let listener = TcpListener::bind(localhost(0)).unwrap();
        let addr_b = listener.local_addr().unwrap();
        let (addr_a, _) = two_free_ports();
        let peers_a = HashMap::from([(server(1), addr_b)]);
        let mut a: TcpTransport<Message> =
            TcpTransport::bind(server(0), TcpConfig::new(addr_a, peers_a)).unwrap();

        // Reference encoding: each frame alone, concatenated.
        let codec = FrameCodec::new();
        let pool = BufferPool::new();
        let mut expected: Vec<u8> = Vec::new();
        let messages: Vec<Message> = (0..200).map(msg).collect();
        for m in &messages {
            expected.extend_from_slice(&codec.encode_shared(server(0), m, &pool).unwrap());
        }

        // Burst-send so the writer has every chance to coalesce (the first
        // frames queue while the connector is still completing).
        for m in &messages {
            a.send(server(1), m.clone());
        }
        let (stream, _) = listener.accept().unwrap();
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut wire: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while wire.len() < expected.len() && std::time::Instant::now() < deadline {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => wire.extend_from_slice(&chunk[..n]),
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break,
            }
        }
        assert_eq!(
            wire, expected,
            "coalesced wire bytes must equal the frame-at-a-time encoding"
        );
        let (writev, coalesced, _, _) = a.stats().writer_snapshot();
        assert!(writev > 0);
        assert!(
            writev < messages.len() as u64 || coalesced > 0,
            "200 burst frames over one connection should not take 200+ uncoalesced syscalls"
        );
    }
}
