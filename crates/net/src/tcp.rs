//! TCP transport: real sockets, per-peer reconnecting outbound queues,
//! bounded backpressure.
//!
//! Topology: every node listens on one address; an outbound worker thread per
//! peer owns a bounded queue and a connection it re-establishes with capped
//! exponential backoff whenever it breaks. Inbound connections are accepted
//! by a listener thread; each accepted connection gets a reader thread that
//! decodes frames (see [`crate::frame`]) and funnels them into the node's
//! single inbound queue. The sender identity travels inside each frame, so
//! connection direction is irrelevant to the protocol and node restarts need
//! no handshake state.
//!
//! The async-runtime note: the container this repository builds in has no
//! crates.io access, so tokio cannot be used; the runtime is thread-per-peer
//! over `std::net`, which at PrestigeBFT cluster sizes (4–100 peers) is well
//! within OS thread budgets. The [`Transport`] trait is the seam where a
//! tokio implementation would slot in unchanged.

use crate::frame::{BufferPool, FrameCodec};
use crate::transport::{
    warn_drop, warn_inbound_drop, Transport, TransportStats, DEFAULT_QUEUE_CAPACITY,
};
use prestige_types::Actor;
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A complete, pre-encoded wire frame shared between the encoding thread and
/// any number of per-peer writers. Produced once per broadcast, no matter how
/// many peers it fans out to.
type SharedFrame = Arc<[u8]>;

/// One item in a per-peer outbound queue.
///
/// Unicast messages travel unencoded and are serialized by the peer's writer
/// thread into a thread-local scratch buffer — keeping serialization off the
/// protocol event loop, as in the pre-frame design, with zero copies.
/// Broadcasts arrive as a pre-encoded [`SharedFrame`]: one serialization on
/// the caller, a refcount bump per peer.
enum Outbound<M> {
    /// A unicast message, encoded by the writer thread.
    Message(M),
    /// Shared pre-encoded bytes (broadcast fan-out).
    Frame(SharedFrame),
}

/// Initial reconnect backoff; doubles per failure up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Reconnect backoff cap.
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Configuration of a TCP endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Address to accept peer connections on.
    pub listen: SocketAddr,
    /// Addresses of every peer this node may send to.
    pub peers: HashMap<Actor, SocketAddr>,
    /// Per-peer outbound queue capacity (messages).
    pub queue_capacity: usize,
    /// Frame codec (wire version and max-frame guard).
    pub codec: FrameCodec,
}

impl TcpConfig {
    /// A config with default queue capacity and codec.
    pub fn new(listen: SocketAddr, peers: HashMap<Actor, SocketAddr>) -> Self {
        TcpConfig {
            listen,
            peers,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            codec: FrameCodec::new(),
        }
    }
}

struct PeerWorker<M> {
    queue: SyncSender<Outbound<M>>,
    join: Option<JoinHandle<()>>,
}

/// A TCP endpoint implementing [`Transport`] for any serde-encodable message
/// type.
pub struct TcpTransport<M: serde::Serialize + serde::Deserialize + Send + 'static> {
    me: Actor,
    config: TcpConfig,
    inbound_rx: Receiver<(Actor, M)>,
    workers: HashMap<Actor, PeerWorker<M>>,
    stats: Arc<TransportStats>,
    shutdown: Arc<AtomicBool>,
    listener_join: Option<JoinHandle<()>>,
    /// Scratch buffers reused across frame encodings.
    encode_pool: BufferPool,
}

impl<M: serde::Serialize + serde::Deserialize + Send + 'static> TcpTransport<M> {
    /// Binds the listen address and starts the accept loop. Outbound
    /// connections are established lazily on first send to each peer.
    pub fn bind(me: Actor, mut config: TcpConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.listen)?;
        // Record the OS-assigned address so port-0 binds are discoverable.
        config.listen = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (inbound_tx, inbound_rx) = sync_channel(config.queue_capacity);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(TransportStats::default());

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_stats = Arc::clone(&stats);
        let accept_codec = config.codec;
        let listener_join = std::thread::Builder::new()
            .name(format!("tcp-accept-{me}"))
            .spawn(move || {
                accept_loop(
                    me,
                    listener,
                    inbound_tx,
                    accept_codec,
                    accept_shutdown,
                    accept_stats,
                )
            })
            .expect("spawn accept thread");

        Ok(TcpTransport {
            me,
            config,
            inbound_rx,
            workers: HashMap::new(),
            stats,
            shutdown,
            listener_join: Some(listener_join),
            encode_pool: BufferPool::new(),
        })
    }

    /// The actual bound listen address (the OS-assigned port when the
    /// config requested port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.config.listen
    }

    fn worker_for(&mut self, to: Actor) -> Option<&PeerWorker<M>> {
        if !self.workers.contains_key(&to) {
            let addr = *self.config.peers.get(&to)?;
            let (queue_tx, queue_rx) = sync_channel(self.config.queue_capacity);
            let me = self.me;
            let codec = self.config.codec;
            let shutdown = Arc::clone(&self.shutdown);
            let stats = Arc::clone(&self.stats);
            let join = std::thread::Builder::new()
                .name(format!("tcp-out-{me}-to-{to}"))
                .spawn(move || outbound_loop(me, to, addr, queue_rx, codec, shutdown, stats))
                .expect("spawn outbound thread");
            self.workers.insert(
                to,
                PeerWorker {
                    queue: queue_tx,
                    join: Some(join),
                },
            );
        }
        self.workers.get(&to)
    }

    /// Queues one outbound item towards `to`, counting and warning on drop.
    fn queue_outbound(&mut self, to: Actor, item: Outbound<M>) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let me = self.me;
        let stats = Arc::clone(&self.stats);
        match self.worker_for(to) {
            Some(worker) => match worker.queue.try_send(item) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    let total = stats.note_drop(to);
                    warn_drop(&stats, me, to, "outbound queue full", total);
                }
            },
            None => {
                // Unknown peer: no address configured.
                let total = stats.note_drop(to);
                warn_drop(&stats, me, to, "no address configured", total);
            }
        }
    }
}

impl<M: serde::Serialize + serde::Deserialize + Send + 'static> Transport<M> for TcpTransport<M> {
    fn me(&self) -> Actor {
        self.me
    }

    fn send(&mut self, to: Actor, message: M) {
        // Unicast: hand the message to the peer's writer thread unencoded, so
        // serialization stays off the protocol event loop.
        self.queue_outbound(to, Outbound::Message(message));
    }

    fn broadcast(&mut self, recipients: &[Actor], message: M)
    where
        M: Clone,
    {
        // Encode exactly once; every per-peer queue receives the same shared
        // bytes. This is the leader→replica hot path: fan-out cost is one
        // serialization plus one refcount bump per peer.
        match self
            .config
            .codec
            .encode_shared(self.me, &message, &self.encode_pool)
        {
            Ok(frame) => {
                for &to in recipients {
                    self.queue_outbound(to, Outbound::Frame(Arc::clone(&frame)));
                }
            }
            Err(_) => {
                for &to in recipients {
                    self.stats.sent.fetch_add(1, Ordering::Relaxed);
                    let total = self.stats.note_drop(to);
                    warn_drop(&self.stats, self.me, to, "frame encoding failed", total);
                }
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(Actor, M)> {
        match self.inbound_rx.recv_timeout(timeout) {
            Ok(delivery) => {
                self.stats.received.fetch_add(1, Ordering::Relaxed);
                Some(delivery)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Dropping the queues disconnects the outbound workers.
        for (_, mut worker) in self.workers.drain() {
            drop(worker.queue);
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
        if let Some(join) = self.listener_join.take() {
            let _ = join.join();
        }
    }
}

impl<M: serde::Serialize + serde::Deserialize + Send + 'static> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<M: serde::Deserialize + Send + 'static>(
    me: Actor,
    listener: TcpListener,
    inbound: SyncSender<(Actor, M)>,
    codec: FrameCodec,
    shutdown: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer_addr)) => {
                let _ = stream.set_nodelay(true);
                let inbound = inbound.clone();
                let reader_shutdown = Arc::clone(&shutdown);
                let reader_stats = Arc::clone(&stats);
                let join = std::thread::Builder::new()
                    .name("tcp-read".to_string())
                    .spawn(move || {
                        read_loop(me, stream, inbound, codec, reader_shutdown, reader_stats)
                    })
                    .expect("spawn reader thread");
                readers.push(join);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
        // Reap readers whose connections have closed, so reconnect churn
        // from flaky peers does not grow the handle list without bound.
        readers.retain(|join| !join.is_finished());
    }
    for join in readers {
        let _ = join.join();
    }
}

fn read_loop<M: serde::Deserialize + Send + 'static>(
    me: Actor,
    mut stream: TcpStream,
    inbound: SyncSender<(Actor, M)>,
    codec: FrameCodec,
    shutdown: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
) {
    use std::io::Read;
    // Bound the blocking read so the thread notices shutdown. Partial frames
    // are accumulated in `buf` and decoded with the streaming decoder, so a
    // timeout mid-frame never loses bytes or desyncs the stream.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    while !shutdown.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match codec.decode::<M>(&buf) {
                        Ok(Some((from, message, used))) => {
                            buf.drain(..used);
                            // Backpressure: a full inbound queue sheds the
                            // message, same policy as the loopback transport.
                            // The shed is attributed to the sending peer (as
                            // an inbound drop) and surfaced, rate-limited,
                            // rather than silent.
                            if inbound.try_send((from, message)).is_err() {
                                let total = stats.note_inbound_drop(from);
                                warn_inbound_drop(&stats, me, from, "inbound queue full", total);
                            }
                        }
                        Ok(None) => break, // need more bytes
                        Err(_) => return,  // corrupt stream: drop connection
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn outbound_loop<M: serde::Serialize>(
    me: Actor,
    peer: Actor,
    addr: SocketAddr,
    queue: Receiver<Outbound<M>>,
    codec: FrameCodec,
    shutdown: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
) {
    let mut backoff = INITIAL_BACKOFF;
    let mut connection: Option<BufWriter<TcpStream>> = None;
    // Scratch buffer reused across unicast encodings on this thread.
    let mut scratch: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Wait for something to send. Broadcast frames arrive pre-encoded
        // (shared bytes); unicast messages are serialized here, off the
        // protocol event loop, into the reused scratch buffer.
        let item = match queue.recv_timeout(Duration::from_millis(100)) {
            Ok(i) => i,
            Err(RecvTimeoutError::Timeout) => {
                // Keep the connection warm / flushed while idle.
                if let Some(w) = connection.as_mut() {
                    if w.flush().is_err() {
                        connection = None;
                    }
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let frame: &[u8] = match &item {
            Outbound::Frame(shared) => shared,
            Outbound::Message(message) => {
                if codec.encode_into(me, message, &mut scratch).is_err() {
                    // Oversize unicast payload: counted, never silent.
                    let total = stats.note_drop(peer);
                    warn_drop(&stats, me, peer, "frame encoding failed", total);
                    continue;
                }
                &scratch
            }
        };

        // (Re)connect if needed, with capped exponential backoff.
        if connection.is_none() {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    connection = Some(BufWriter::new(stream));
                    backoff = INITIAL_BACKOFF;
                }
                Err(_) => {
                    // The frame in hand is lost while the peer is
                    // unreachable; the protocol retries at its own cadence.
                    let total = stats.note_drop(peer);
                    warn_drop(&stats, me, peer, "peer unreachable", total);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(MAX_BACKOFF);
                    continue;
                }
            }
        }

        if let Some(writer) = connection.as_mut() {
            let ok = writer.write_all(frame).is_ok() && writer.flush().is_ok();
            if !ok {
                // Broken pipe: the frame is lost and the connection is
                // dropped; the next frame triggers a reconnect.
                let total = stats.note_drop(peer);
                warn_drop(&stats, me, peer, "connection broken", total);
                connection = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::{Message, ServerId, SyncKind};

    fn server(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    fn msg(n: u64) -> Message {
        Message::SyncReq {
            kind: SyncKind::Transaction,
            from: n,
            to: n,
        }
    }

    fn localhost(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    /// Picks two free ports by binding port 0 and releasing.
    fn two_free_ports() -> (SocketAddr, SocketAddr) {
        let a = TcpListener::bind(localhost(0)).unwrap();
        let b = TcpListener::bind(localhost(0)).unwrap();
        (a.local_addr().unwrap(), b.local_addr().unwrap())
    }

    #[test]
    fn frames_travel_between_two_tcp_endpoints() {
        let (addr_a, addr_b) = two_free_ports();
        let peers_a = HashMap::from([(server(1), addr_b)]);
        let peers_b = HashMap::from([(server(0), addr_a)]);
        let mut a: TcpTransport<Message> =
            TcpTransport::bind(server(0), TcpConfig::new(addr_a, peers_a)).unwrap();
        let mut b: TcpTransport<Message> =
            TcpTransport::bind(server(1), TcpConfig::new(addr_b, peers_b)).unwrap();

        for i in 0..10 {
            a.send(server(1), msg(i));
        }
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 10 && std::time::Instant::now() < deadline {
            if let Some((from, m)) = b.recv_timeout(Duration::from_millis(100)) {
                assert_eq!(from, server(0));
                got.push(m);
            }
        }
        assert_eq!(got.len(), 10, "all frames must arrive in order");
        assert_eq!(got[0], msg(0));
        assert_eq!(got[9], msg(9));
    }

    #[test]
    fn outbound_queue_survives_peer_coming_up_late() {
        let (addr_a, addr_b) = two_free_ports();
        let peers_a = HashMap::from([(server(1), addr_b)]);
        let mut a: TcpTransport<Message> =
            TcpTransport::bind(server(0), TcpConfig::new(addr_a, peers_a)).unwrap();

        // Send before the peer exists: worker retries with backoff.
        for i in 0..5 {
            a.send(server(1), msg(i));
        }
        std::thread::sleep(Duration::from_millis(150));
        let peers_b = HashMap::from([(server(0), addr_a)]);
        let mut b: TcpTransport<Message> =
            TcpTransport::bind(server(1), TcpConfig::new(addr_b, peers_b)).unwrap();

        // The queued messages (minus any dropped during unreachability) and a
        // fresh one must arrive once the peer is up.
        a.send(server(1), msg(99));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_fresh = false;
        while !saw_fresh && std::time::Instant::now() < deadline {
            if let Some((_, m)) = b.recv_timeout(Duration::from_millis(100)) {
                if m == msg(99) {
                    saw_fresh = true;
                }
            }
        }
        assert!(saw_fresh, "message sent after peer came up must arrive");
    }

    #[test]
    fn send_to_unconfigured_peer_counts_as_drop() {
        let (addr_a, _) = two_free_ports();
        let mut a: TcpTransport<Message> =
            TcpTransport::bind(server(0), TcpConfig::new(addr_a, HashMap::new())).unwrap();
        a.send(server(9), msg(1));
        assert_eq!(a.stats().snapshot(), (1, 0, 1));
    }
}
