//! # prestige-net
//!
//! The real networking runtime for PrestigeBFT: everything needed to take the
//! I/O-free protocol implementations of `prestige-core` from the
//! deterministic simulator onto actual sockets, unmodified.
//!
//! Four layers, bottom to top:
//!
//! 1. **wire codec** ([`frame`]) — serde-derived binary encoding of
//!    `prestige-types` messages wrapped in length-prefixed frames with a
//!    magic preamble, a wire version, and a max-frame guard;
//! 2. **transport abstraction** ([`transport`], [`tcp`]) — the [`Transport`]
//!    trait with two implementations: a channel-based in-process loopback
//!    (fast, used by integration tests and CI) and a TCP transport with
//!    per-peer reconnecting outbound queues and bounded backpressure;
//! 3. **node runtime** ([`runtime`]) — an event loop that drives any
//!    `prestige_sim::Process` with real timers and real deliveries through
//!    the same `Context`/`Effects` driver contract the simulator uses, so
//!    protocol code cannot tell which runtime it is on;
//! 4. **cluster launcher** ([`cluster`], [`config`]) — one-call in-process
//!    cluster bring-up for tests, plus the TOML-configured building blocks
//!    the `prestige-node` binary uses for multi-process deployments.
//!
//! On top of these sits the **adversarial harness**: [`chaos`] injects link
//! delay, loss, and (a)symmetric partitions with scheduled heal at the
//! `Transport` seam, [`cluster::LocalCluster::launch_adversarial`] attaches
//! the paper's Byzantine behaviours (F1–F4, S1/S2) to real nodes, and the
//! `chaos_net` binary runs declarative attack scenarios with no-fork and
//! recovery assertions (see `docs/ATTACKS.md`).
//!
//! ## Why the simulator and the runtime can share protocol code
//!
//! `prestige-core` servers and clients are deterministic event handlers: they
//! react to message deliveries and timer expirations, and buffer their
//! effects (sends, timer arms/cancels) into `prestige_sim::Effects`. The
//! simulator replays those effects into a virtual event queue; this crate
//! replays them into socket writes and a timer heap serviced by an OS
//! thread. `SimTime` is plain nanoseconds, so all protocol timeout arithmetic
//! transfers 1:1 to wall-clock time.
//!
//! ## Quick start (in-process cluster)
//!
//! ```
//! use prestige_net::cluster::LocalCluster;
//! use prestige_types::ClusterConfig;
//! use std::time::Duration;
//!
//! let config = ClusterConfig::new(4).with_batch_size(50);
//! let cluster = LocalCluster::launch(config, 7, 1, 32);
//! let committed = cluster.wait_until(Duration::from_secs(20), |c| {
//!     c.total_committed() >= 100
//! });
//! assert!(committed, "cluster must commit transactions on the real runtime");
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod config;
pub mod frame;
pub mod runtime;
pub mod tcp;
pub mod transport;

pub use chaos::{ChaosTransport, NetChaos};
pub use cluster::{
    launch_tcp_client, launch_tcp_server, verify_no_fork_chains, LocalCluster, StoragePlan,
    TcpCluster,
};
pub use config::{NodeConfig, NodeRole};
pub use frame::{BufferPool, FrameCodec, FrameError, DEFAULT_MAX_FRAME, MAGIC, WIRE_VERSION};
pub use runtime::NodeHandle;
pub use tcp::{TcpConfig, TcpTransport};
pub use transport::{LoopbackNet, LoopbackTransport, Transport, TransportStats, TransportTotals};
