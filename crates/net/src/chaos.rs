//! Network chaos injection at the [`Transport`] seam.
//!
//! Real Byzantine evaluation needs more than faulty *nodes*: the paper's
//! attacks (F1–F4) interact with bad *networks* — delayed links make timeout
//! mimicry effective, partitions manufacture the leader failures that
//! repeated view-change attackers exploit. This module composes both: a
//! [`ChaosTransport`] wraps any [`Transport`] implementation and applies the
//! link faults described by a shared [`NetChaos`] controller:
//!
//! * **delay** — a fixed per-delivery latency plus uniform jitter;
//! * **loss** — independent per-delivery drop probability;
//! * **partitions** — directed `(from, to)` link blocks, composable into
//!   symmetric splits (`partition_between`), asymmetric one-way cuts
//!   (`partition_oneway`), and full isolation of one actor (`isolate`), with
//!   an optional *scheduled heal* (`heal_after`) applied lazily so no extra
//!   timer thread is needed.
//!
//! All faults are applied on the **receive path** of the wrapped endpoint:
//! each endpoint filters and delays its own inbound deliveries. This gives
//! every directed link exactly one choke point (the receiver), so symmetric
//! and asymmetric partitions fall out of the same rule set, and the
//! underlying transport's outbound machinery (reconnects, backpressure,
//! encode-once broadcast) keeps running untouched — exactly what a lossy or
//! partitioned IP network looks like to a node.
//!
//! Chaos drops are recorded in the wrapped transport's
//! [`TransportStats`](crate::transport::TransportStats) as inbound drops
//! attributed to the sending peer, so scenario reports can show who was cut
//! off from whom.
//!
//! ```
//! use prestige_net::chaos::{ChaosTransport, NetChaos};
//! use prestige_net::transport::{LoopbackNet, Transport};
//! use prestige_types::{Actor, ServerId};
//! use std::time::Duration;
//!
//! let net: LoopbackNet<u64> = LoopbackNet::new();
//! let chaos = NetChaos::new();
//! let a = Actor::Server(ServerId(0));
//! let b = Actor::Server(ServerId(1));
//! let mut ta = net.endpoint(a);
//! let mut tb = ChaosTransport::new(Box::new(net.endpoint(b)), chaos.clone(), 7);
//!
//! // Partition the a -> b direction: b sheds everything a sends.
//! chaos.partition_oneway(&[a], &[b]);
//! ta.send(b, 1);
//! assert_eq!(tb.recv_timeout(Duration::from_millis(20)), None);
//!
//! // Heal: traffic flows again.
//! chaos.heal_now();
//! ta.send(b, 2);
//! assert_eq!(tb.recv_timeout(Duration::from_secs(1)), Some((a, 2)));
//! ```

use crate::transport::Transport;
use prestige_types::Actor;
use std::collections::{BinaryHeap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What the chaos rules decided for one inbound delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkVerdict {
    /// Deliver immediately.
    Deliver,
    /// Drop silently (loss or partition).
    Drop,
    /// Deliver after the given extra delay.
    Delay(Duration),
}

/// The mutable chaos rule set shared by every [`ChaosTransport`] of a
/// cluster.
#[derive(Debug, Default)]
struct ChaosState {
    /// Fixed extra one-way delay applied to every delivery.
    delay: Duration,
    /// Upper bound of the uniform jitter added on top of `delay`.
    jitter: Duration,
    /// Independent per-delivery drop probability in `[0, 1]`.
    loss: f64,
    /// Blocked directed links: a `(from, to)` entry means `to` sheds
    /// everything `from` sends.
    blocked: HashSet<(Actor, Actor)>,
    /// When set, `blocked` is cleared lazily once this instant passes (the
    /// scheduled heal).
    heal_at: Option<Instant>,
}

/// Shared handle controlling the link faults of a cluster. Cheap to clone;
/// all clones mutate the same rule set, so a scenario runner can flip
/// partitions on a running cluster from outside.
#[derive(Debug, Clone, Default)]
pub struct NetChaos {
    state: Arc<Mutex<ChaosState>>,
}

impl NetChaos {
    /// A controller with no faults configured (all links healthy).
    pub fn new() -> Self {
        NetChaos::default()
    }

    /// Sets the per-delivery link delay: every delivery waits `delay` plus a
    /// uniform draw from `[0, jitter]` before it is handed to the node.
    pub fn set_link_delay(&self, delay: Duration, jitter: Duration) {
        let mut state = self.state.lock().expect("chaos state lock");
        state.delay = delay;
        state.jitter = jitter;
    }

    /// Sets the independent per-delivery loss probability (clamped to
    /// `[0, 1]`).
    pub fn set_loss(&self, probability: f64) {
        let mut state = self.state.lock().expect("chaos state lock");
        state.loss = probability.clamp(0.0, 1.0);
    }

    /// Blocks every link *from* an actor in `from` *to* an actor in `to`
    /// (one direction only — an asymmetric partition). Existing blocks are
    /// kept, so partitions compose.
    pub fn partition_oneway(&self, from: &[Actor], to: &[Actor]) {
        let mut state = self.state.lock().expect("chaos state lock");
        for &f in from {
            for &t in to {
                if f != t {
                    state.blocked.insert((f, t));
                }
            }
        }
    }

    /// Blocks all links between the two groups, in both directions (a
    /// symmetric partition).
    pub fn partition_between(&self, a: &[Actor], b: &[Actor]) {
        self.partition_oneway(a, b);
        self.partition_oneway(b, a);
    }

    /// Fully isolates `actor` from every actor in `others`, both directions.
    pub fn isolate(&self, actor: Actor, others: &[Actor]) {
        self.partition_between(&[actor], others);
    }

    /// Schedules a heal: all partition blocks dissolve once `after` has
    /// elapsed. The heal is applied lazily on the next delivery decision, so
    /// no timer thread is required. Delay and loss settings are unaffected.
    pub fn heal_after(&self, after: Duration) {
        let mut state = self.state.lock().expect("chaos state lock");
        state.heal_at = Some(Instant::now() + after);
    }

    /// Immediately dissolves all partition blocks (delay and loss settings
    /// are unaffected).
    pub fn heal_now(&self) {
        let mut state = self.state.lock().expect("chaos state lock");
        state.blocked.clear();
        state.heal_at = None;
    }

    /// Whether any link is currently blocked (after applying a due scheduled
    /// heal).
    pub fn is_partitioned(&self) -> bool {
        let mut state = self.state.lock().expect("chaos state lock");
        Self::apply_due_heal(&mut state);
        !state.blocked.is_empty()
    }

    /// Number of blocked directed links (after applying a due scheduled
    /// heal).
    pub fn blocked_links(&self) -> usize {
        let mut state = self.state.lock().expect("chaos state lock");
        Self::apply_due_heal(&mut state);
        state.blocked.len()
    }

    fn apply_due_heal(state: &mut ChaosState) {
        if let Some(at) = state.heal_at {
            if Instant::now() >= at {
                state.blocked.clear();
                state.heal_at = None;
            }
        }
    }

    /// Decides the fate of one delivery on the directed link `from -> to`.
    fn verdict(&self, from: Actor, to: Actor, rng: &mut SplitMix) -> LinkVerdict {
        let mut state = self.state.lock().expect("chaos state lock");
        Self::apply_due_heal(&mut state);
        if state.blocked.contains(&(from, to)) {
            return LinkVerdict::Drop;
        }
        if state.loss > 0.0 && rng.next_f64() < state.loss {
            return LinkVerdict::Drop;
        }
        if state.delay > Duration::ZERO || state.jitter > Duration::ZERO {
            let jitter = state.jitter.mul_f64(rng.next_f64());
            return LinkVerdict::Delay(state.delay + jitter);
        }
        LinkVerdict::Deliver
    }
}

/// SplitMix64: a tiny deterministic RNG for loss/jitter draws. One per
/// transport, seeded per endpoint, so chaos runs are reproducible per seed.
#[derive(Debug, Clone)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A delivery held back by injected delay, ordered by due time (FIFO on
/// ties via the arrival sequence number).
struct DelayedDelivery<M> {
    due: Instant,
    seq: u64,
    from: Actor,
    message: M,
}

impl<M> PartialEq for DelayedDelivery<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for DelayedDelivery<M> {}
impl<M> PartialOrd for DelayedDelivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for DelayedDelivery<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest due first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A [`Transport`] decorator applying the faults of a shared [`NetChaos`]
/// controller to this endpoint's inbound deliveries. Outbound traffic passes
/// straight through to the wrapped transport.
pub struct ChaosTransport<M> {
    inner: Box<dyn Transport<M>>,
    chaos: NetChaos,
    rng: SplitMix,
    me: Actor,
    delayed: BinaryHeap<DelayedDelivery<M>>,
    next_seq: u64,
}

impl<M: Send + 'static> ChaosTransport<M> {
    /// Wraps `inner`, filtering its inbound deliveries through `chaos`.
    /// `seed` feeds the endpoint's deterministic loss/jitter RNG; give
    /// distinct endpoints distinct seeds.
    pub fn new(inner: Box<dyn Transport<M>>, chaos: NetChaos, seed: u64) -> Self {
        let me = inner.me();
        ChaosTransport {
            inner,
            chaos,
            rng: SplitMix::new(seed),
            me,
            delayed: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Pops the head of the delay queue if it is due at `now`.
    fn pop_due(&mut self, now: Instant) -> Option<(Actor, M)> {
        if self.delayed.peek().is_some_and(|d| d.due <= now) {
            let d = self.delayed.pop().expect("peeked");
            return Some((d.from, d.message));
        }
        None
    }
}

impl<M: Send + 'static> Transport<M> for ChaosTransport<M> {
    fn me(&self) -> Actor {
        self.me
    }

    fn send(&mut self, to: Actor, message: M) {
        self.inner.send(to, message);
    }

    fn broadcast(&mut self, recipients: &[Actor], message: M)
    where
        M: Clone,
    {
        self.inner.broadcast(recipients, message);
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<(Actor, M)> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if let Some(delivery) = self.pop_due(now) {
                return Some(delivery);
            }
            // Wait on the wrapped transport until whichever comes first: the
            // caller's deadline or the next delayed delivery becoming due.
            let mut wait = deadline.saturating_duration_since(now);
            if let Some(head) = self.delayed.peek() {
                wait = wait.min(head.due.saturating_duration_since(now));
            }
            if let Some((from, message)) = self.inner.recv_timeout(wait) {
                match self.chaos.verdict(from, self.me, &mut self.rng) {
                    LinkVerdict::Deliver => return Some((from, message)),
                    LinkVerdict::Drop => {
                        // Intentional chaos: counted (attributed to the
                        // sender) but not warned about.
                        self.inner.stats().note_inbound_drop(from);
                    }
                    LinkVerdict::Delay(extra) => {
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.delayed.push(DelayedDelivery {
                            due: Instant::now() + extra,
                            seq,
                            from,
                            message,
                        });
                    }
                }
            }
            if Instant::now() >= deadline {
                return self.pop_due(Instant::now());
            }
        }
    }

    fn stats(&self) -> Arc<crate::transport::TransportStats> {
        self.inner.stats()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackNet;
    use prestige_types::ServerId;

    fn server(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    fn pair(chaos: &NetChaos) -> (impl Transport<u64>, ChaosTransport<u64>) {
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let a = net.endpoint(server(0));
        let b = ChaosTransport::new(Box::new(net.endpoint(server(1))), chaos.clone(), 42);
        (a, b)
    }

    #[test]
    fn healthy_links_pass_through() {
        let chaos = NetChaos::new();
        let (mut a, mut b) = pair(&chaos);
        a.send(server(1), 5);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)), Some((server(0), 5)));
        assert!(!chaos.is_partitioned());
    }

    #[test]
    fn symmetric_partition_blocks_both_directions_and_heals() {
        let chaos = NetChaos::new();
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = ChaosTransport::new(Box::new(net.endpoint(server(0))), chaos.clone(), 1);
        let mut b = ChaosTransport::new(Box::new(net.endpoint(server(1))), chaos.clone(), 2);
        chaos.partition_between(&[server(0)], &[server(1)]);
        assert!(chaos.is_partitioned());
        assert_eq!(chaos.blocked_links(), 2);

        a.send(server(1), 1);
        b.send(server(0), 2);
        assert_eq!(b.recv_timeout(Duration::from_millis(20)), None);
        assert_eq!(a.recv_timeout(Duration::from_millis(20)), None);
        // Both drops were counted against the sending peer.
        assert_eq!(a.stats().dropped_from(server(1)), 1);
        assert_eq!(b.stats().dropped_from(server(0)), 1);

        chaos.heal_now();
        a.send(server(1), 3);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)), Some((server(0), 3)));
    }

    #[test]
    fn asymmetric_partition_blocks_one_direction_only() {
        let chaos = NetChaos::new();
        let net: LoopbackNet<u64> = LoopbackNet::new();
        let mut a = ChaosTransport::new(Box::new(net.endpoint(server(0))), chaos.clone(), 1);
        let mut b = ChaosTransport::new(Box::new(net.endpoint(server(1))), chaos.clone(), 2);
        chaos.partition_oneway(&[server(0)], &[server(1)]);

        a.send(server(1), 1);
        assert_eq!(b.recv_timeout(Duration::from_millis(20)), None, "0->1 cut");
        b.send(server(0), 2);
        assert_eq!(
            a.recv_timeout(Duration::from_secs(1)),
            Some((server(1), 2)),
            "1->0 still flows"
        );
    }

    #[test]
    fn scheduled_heal_dissolves_partition_lazily() {
        let chaos = NetChaos::new();
        let (mut a, mut b) = pair(&chaos);
        chaos.isolate(server(1), &[server(0)]);
        chaos.heal_after(Duration::from_millis(50));

        a.send(server(1), 1);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            None,
            "still partitioned"
        );
        std::thread::sleep(Duration::from_millis(60));
        a.send(server(1), 2);
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)),
            Some((server(0), 2)),
            "heal deadline passed"
        );
        assert!(!chaos.is_partitioned());
    }

    #[test]
    fn full_loss_drops_everything_zero_loss_nothing() {
        let chaos = NetChaos::new();
        let (mut a, mut b) = pair(&chaos);
        chaos.set_loss(1.0);
        for i in 0..10 {
            a.send(server(1), i);
        }
        assert_eq!(b.recv_timeout(Duration::from_millis(30)), None);
        assert_eq!(b.stats().dropped_from(server(0)), 10);

        chaos.set_loss(0.0);
        a.send(server(1), 99);
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)),
            Some((server(0), 99))
        );
    }

    #[test]
    fn partial_loss_drops_roughly_the_configured_fraction() {
        let chaos = NetChaos::new();
        let (mut a, mut b) = pair(&chaos);
        chaos.set_loss(0.5);
        for i in 0..200 {
            a.send(server(1), i);
        }
        let mut got = 0;
        while b.recv_timeout(Duration::from_millis(20)).is_some() {
            got += 1;
        }
        assert!(
            (40..=160).contains(&got),
            "~50% loss should deliver around half of 200, got {got}"
        );
    }

    #[test]
    fn delay_holds_messages_until_due_and_preserves_order() {
        let chaos = NetChaos::new();
        let (mut a, mut b) = pair(&chaos);
        chaos.set_link_delay(Duration::from_millis(40), Duration::ZERO);
        let t0 = Instant::now();
        a.send(server(1), 1);
        a.send(server(1), 2);
        let first = b.recv_timeout(Duration::from_secs(1)).expect("delivered");
        let waited = t0.elapsed();
        assert_eq!(first, (server(0), 1));
        assert!(
            waited >= Duration::from_millis(35),
            "delivery must be delayed, waited {waited:?}"
        );
        assert_eq!(b.recv_timeout(Duration::from_secs(1)), Some((server(0), 2)));
    }

    #[test]
    fn zero_timeout_poll_does_not_block() {
        let chaos = NetChaos::new();
        let (_a, mut b) = pair(&chaos);
        let t0 = Instant::now();
        assert_eq!(b.recv_timeout(Duration::ZERO), None);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix::new(9);
        let mut b = SplitMix::new(9);
        let mean: f64 = (0..1000).map(|_| a.next_f64()).sum::<f64>() / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} off for uniform");
        assert_eq!(b.next_u64(), SplitMix::new(9).next_u64());
    }
}
