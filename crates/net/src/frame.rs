//! The wire codec layer: versioned, length-prefixed binary framing.
//!
//! Every message travelling between real nodes is one *frame*:
//!
//! ```text
//! +----------+-----------+------------+----------------------------------+
//! | magic    | version   | length     | body                             |
//! | 4 bytes  | u16 LE    | u32 LE     | bincode(sender Actor ++ payload) |
//! +----------+-----------+------------+----------------------------------+
//! ```
//!
//! The magic rejects cross-talk from foreign protocols, the version rejects
//! peers speaking an incompatible encoding, and the length is bounded by a
//! configurable maximum so a corrupt or malicious peer cannot make a node
//! allocate unbounded memory. The body encoding is the workspace's compact
//! binary serde format (see `crates/compat/README.md`).

use prestige_types::Actor;
use serde::{Deserialize as _, Serialize as _};
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// Frame preamble identifying the PrestigeBFT wire protocol.
pub const MAGIC: [u8; 4] = *b"PBFT";

/// Version of the body encoding. Bump on any change to the serde stand-in's
/// format or to message layouts.
///
/// v3: campaigns carry certified tip claims (`Camp.commit_cert` /
/// `Camp.tip_cert`), `vcBlock` carries the certified state-transfer payload
/// (`committed_seq` / `ord_tip` / `tip_cert`), and `SyncResp` gained the
/// `ordered` entry list for certified uncommitted-batch sync.
///
/// v4: the durable storage plane — new checkpoint messages (`CkptShare` /
/// `CkptCert`), the `Snapshot` sync kind, and `SyncResp` gained the `ckpt`
/// stable-checkpoint certificate field. v3 peers are rejected at the frame
/// header.
pub const WIRE_VERSION: u16 = 4;

/// Default upper bound on a frame body (16 MiB — a full batch of maximum-size
/// proposals plus QCs fits comfortably).
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Errors surfaced while encoding or decoding frames.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport I/O failed.
    Io(io::Error),
    /// The preamble was not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different wire version.
    VersionMismatch {
        /// Version advertised by the peer.
        got: u16,
        /// Version this node speaks.
        want: u16,
    },
    /// The advertised body length exceeds the configured maximum.
    Oversize {
        /// Advertised body length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// The body failed to decode.
    Codec(serde::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::VersionMismatch { got, want } => {
                write!(f, "wire version mismatch: peer {got}, local {want}")
            }
            FrameError::Oversize { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
            FrameError::Codec(e) => write!(f, "frame body decode: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<serde::Error> for FrameError {
    fn from(e: serde::Error) -> Self {
        FrameError::Codec(e)
    }
}

/// Encoder/decoder for length-prefixed frames.
#[derive(Debug, Clone, Copy)]
pub struct FrameCodec {
    max_frame: u32,
}

impl Default for FrameCodec {
    fn default() -> Self {
        FrameCodec {
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

impl FrameCodec {
    /// A codec with the default frame bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// A codec with a custom frame bound (both directions).
    pub fn with_max_frame(max_frame: u32) -> Self {
        FrameCodec { max_frame }
    }

    /// The configured maximum body size.
    pub fn max_frame(&self) -> u32 {
        self.max_frame
    }

    /// Encodes `(from, payload)` into a complete frame.
    pub fn encode<M: serde::Serialize>(
        &self,
        from: Actor,
        payload: &M,
    ) -> Result<Vec<u8>, FrameError> {
        let mut frame = Vec::with_capacity(64);
        self.encode_into(from, payload, &mut frame)?;
        Ok(frame)
    }

    /// Encodes `(from, payload)` into `out` (cleared first), writing header
    /// and body in a single pass: the body is serialized directly after a
    /// placeholder header and the length field patched afterwards, so there
    /// is no intermediate body buffer. With a buffer from a [`BufferPool`]
    /// this makes frame encoding allocation-free in steady state.
    pub fn encode_into<M: serde::Serialize>(
        &self,
        from: Actor,
        payload: &M,
        out: &mut Vec<u8>,
    ) -> Result<(), FrameError> {
        out.clear();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        from.serialize(out);
        payload.serialize(out);
        let len = u32::try_from(out.len() - 10).map_err(|_| FrameError::Oversize {
            len: u32::MAX,
            max: self.max_frame,
        })?;
        if len > self.max_frame {
            out.clear();
            return Err(FrameError::Oversize {
                len,
                max: self.max_frame,
            });
        }
        out[6..10].copy_from_slice(&len.to_le_bytes());
        Ok(())
    }

    /// Encodes `(from, payload)` once into shared bytes, using `pool` for the
    /// scratch buffer. The returned `Arc<[u8]>` is what the broadcast path
    /// hands to every per-peer writer: one serialization, many readers.
    pub fn encode_shared<M: serde::Serialize>(
        &self,
        from: Actor,
        payload: &M,
        pool: &BufferPool,
    ) -> Result<Arc<[u8]>, FrameError> {
        let mut buf = pool.get();
        let result = self.encode_into(from, payload, &mut buf);
        let frame = result.map(|()| Arc::<[u8]>::from(buf.as_slice()));
        pool.put(buf);
        frame
    }

    /// Decodes one frame from a byte slice, returning the sender, payload,
    /// and the number of bytes consumed. Returns `Ok(None)` when the slice
    /// does not yet hold a complete frame (streaming decode).
    pub fn decode<M: serde::Deserialize>(
        &self,
        buf: &[u8],
    ) -> Result<Option<(Actor, M, usize)>, FrameError> {
        if buf.len() < 10 {
            return Ok(None);
        }
        let magic: [u8; 4] = buf[0..4].try_into().expect("sized");
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().expect("sized"));
        if version != WIRE_VERSION {
            return Err(FrameError::VersionMismatch {
                got: version,
                want: WIRE_VERSION,
            });
        }
        let len = u32::from_le_bytes(buf[6..10].try_into().expect("sized"));
        if len > self.max_frame {
            return Err(FrameError::Oversize {
                len,
                max: self.max_frame,
            });
        }
        let total = 10 + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let mut reader = serde::Reader::new(&buf[10..total]);
        let from = Actor::deserialize(&mut reader)?;
        let payload = M::deserialize(&mut reader)?;
        if !reader.is_empty() {
            return Err(FrameError::Codec(serde::Error::LengthOverflow));
        }
        Ok(Some((from, payload, total)))
    }

    /// Writes one frame to a blocking writer.
    pub fn write_frame<W: Write, M: serde::Serialize>(
        &self,
        writer: &mut W,
        from: Actor,
        payload: &M,
    ) -> Result<(), FrameError> {
        let frame = self.encode(from, payload)?;
        writer.write_all(&frame)?;
        Ok(())
    }

    /// Reads one complete frame from a blocking reader. Validation is
    /// delegated to [`FrameCodec::decode`] so the streaming and buffered
    /// paths accept exactly the same byte streams.
    pub fn read_frame<R: Read, M: serde::Deserialize>(
        &self,
        reader: &mut R,
    ) -> Result<(Actor, M), FrameError> {
        let mut frame = vec![0u8; 10];
        reader.read_exact(&mut frame)?;
        // Let the streaming decoder validate the header before the length
        // field is trusted. Ten bytes can never hold a complete frame (the
        // body always starts with the sender actor, and a zero-length body
        // fails inside decode with a codec error, same as the buffered
        // path), so a valid header always yields `None` here.
        let len = match self.decode::<M>(&frame)? {
            Some(_) => unreachable!("a 10-byte input cannot hold a complete frame"),
            None => u32::from_le_bytes(frame[6..10].try_into().expect("sized")),
        };
        frame.resize(10 + len as usize, 0);
        reader.read_exact(&mut frame[10..])?;
        match self.decode::<M>(&frame)? {
            Some((from, payload, _)) => Ok((from, payload)),
            None => unreachable!("decode sees the complete frame"),
        }
    }
}

/// A small free-list of encode scratch buffers, so steady-state frame
/// encoding reuses allocations instead of allocating per message.
///
/// Buffers whose capacity grew beyond [`BufferPool::MAX_RETAINED_CAPACITY`]
/// (e.g. after one huge sync response) are dropped rather than pooled, so a
/// single outlier cannot pin memory forever.
#[derive(Debug, Default)]
pub struct BufferPool {
    slots: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    /// Maximum number of idle buffers kept.
    pub const MAX_SLOTS: usize = 8;
    /// Largest buffer capacity worth retaining (1 MiB).
    pub const MAX_RETAINED_CAPACITY: usize = 1024 * 1024;

    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool (or a fresh one).
    pub fn get(&self) -> Vec<u8> {
        self.slots
            .lock()
            .expect("buffer pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > Self::MAX_RETAINED_CAPACITY {
            return;
        }
        buf.clear();
        let mut slots = self.slots.lock().expect("buffer pool lock");
        if slots.len() < Self::MAX_SLOTS {
            slots.push(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.slots.lock().expect("buffer pool lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestige_types::{ClientId, Message, ServerId, SyncKind, View};

    fn sample() -> Message {
        Message::SyncReq {
            kind: SyncKind::Transaction,
            from: 3,
            to: 17,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let codec = FrameCodec::new();
        let from = Actor::Server(ServerId(2));
        let frame = codec.encode(from, &sample()).unwrap();
        let (sender, msg, used) = codec.decode::<Message>(&frame).unwrap().unwrap();
        assert_eq!(sender, from);
        assert_eq!(msg, sample());
        assert_eq!(used, frame.len());
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let codec = FrameCodec::new();
        let from = Actor::Server(ServerId(4));
        let expected = codec.encode(from, &sample()).unwrap();
        let mut buf = vec![0xAAu8; 3]; // stale content must be cleared
        codec.encode_into(from, &sample(), &mut buf).unwrap();
        assert_eq!(buf, expected);
        // Re-encoding into the same buffer yields the same bytes again.
        codec.encode_into(from, &sample(), &mut buf).unwrap();
        assert_eq!(buf, expected);
    }

    #[test]
    fn encode_shared_produces_identical_frames_and_pools_buffers() {
        let codec = FrameCodec::new();
        let pool = BufferPool::new();
        let from = Actor::Server(ServerId(2));
        let shared = codec.encode_shared(from, &sample(), &pool).unwrap();
        assert_eq!(&shared[..], codec.encode(from, &sample()).unwrap());
        assert_eq!(pool.idle(), 1, "scratch buffer returned to the pool");
        let again = codec.encode_shared(from, &sample(), &pool).unwrap();
        assert_eq!(shared, again);
        assert_eq!(pool.idle(), 1, "buffer was reused, not re-added");
    }

    #[test]
    fn oversize_encode_into_clears_output() {
        let codec = FrameCodec::with_max_frame(8);
        let mut buf = Vec::new();
        let err = codec.encode_into(Actor::Server(ServerId(0)), &sample(), &mut buf);
        assert!(matches!(err, Err(FrameError::Oversize { .. })));
        assert!(buf.is_empty(), "failed encode must not leak partial frames");
    }

    #[test]
    fn streaming_decode_waits_for_full_frame() {
        let codec = FrameCodec::new();
        let frame = codec.encode(Actor::Client(ClientId(1)), &sample()).unwrap();
        for cut in [0, 5, 9, frame.len() - 1] {
            assert!(codec.decode::<Message>(&frame[..cut]).unwrap().is_none());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let codec = FrameCodec::new();
        let mut frame = codec.encode(Actor::Server(ServerId(0)), &sample()).unwrap();
        frame[0] = b'X';
        assert!(matches!(
            codec.decode::<Message>(&frame),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let codec = FrameCodec::new();
        let mut frame = codec.encode(Actor::Server(ServerId(0)), &sample()).unwrap();
        frame[4] = WIRE_VERSION as u8 + 1;
        assert!(matches!(
            codec.decode::<Message>(&frame),
            Err(FrameError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn oversize_frames_are_rejected_before_allocation() {
        let codec = FrameCodec::with_max_frame(64);
        let big = Message::Prop {
            proposals: (0..100)
                .map(|i| {
                    prestige_types::Proposal::new(
                        prestige_types::Transaction::with_size(ClientId(1), i, 128),
                        prestige_types::Digest::ZERO,
                    )
                })
                .collect(),
            client_sig: [0; 32],
        };
        assert!(matches!(
            codec.encode(Actor::Client(ClientId(1)), &big),
            Err(FrameError::Oversize { .. })
        ));
        // Decoding a forged oversize header must fail fast too.
        let mut forged = Vec::new();
        forged.extend_from_slice(&MAGIC);
        forged.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            codec.decode::<Message>(&forged),
            Err(FrameError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_garbage_in_body_is_rejected() {
        let codec = FrameCodec::new();
        let from = Actor::Server(ServerId(1));
        let mut body = Vec::new();
        serde::Serialize::serialize(&from, &mut body);
        serde::Serialize::serialize(&sample(), &mut body);
        body.push(0xFF);
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        assert!(matches!(
            codec.decode::<Message>(&frame),
            Err(FrameError::Codec(_))
        ));
    }

    #[test]
    fn view_payloads_round_trip_through_io_paths() {
        let codec = FrameCodec::new();
        let msg = Message::SyncResp {
            vc_blocks: vec![prestige_types::VcBlock::genesis(4)],
            tx_blocks: vec![],
            ordered: vec![],
            ckpt: None,
        };
        let mut buf = Vec::new();
        codec
            .write_frame(&mut buf, Actor::Server(ServerId(3)), &msg)
            .unwrap();
        let (from, back): (Actor, Message) = codec.read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(from, Actor::Server(ServerId(3)));
        assert_eq!(back, msg);
        let _ = View(1);
    }
}
