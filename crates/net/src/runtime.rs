//! The node runtime: drives an I/O-free [`Process`] on real time and a real
//! transport.
//!
//! The deterministic protocol implementations in `prestige-core` are written
//! against the driver contract of `prestige-sim` ([`Context`] / `Effects`):
//! handlers react to deliveries and timer expirations and buffer their
//! effects. The simulator turns those effects into virtual events; this
//! runtime turns the *same* effects into socket writes and OS timers, so the
//! exact same server and client code runs unmodified on a real cluster:
//!
//! * `ctx.now()` — wall-clock nanoseconds since the node started
//!   (`SimTime` is just a nanosecond counter, so protocol timeout arithmetic
//!   carries over unchanged);
//! * `ctx.send(..)` — handed to the [`Transport`];
//! * `ctx.set_timer(..)` — kept in a local timer heap, fired by the event
//!   loop when due (cancellations respected);
//! * `ctx.charge_cpu(..)` — ignored: real CPU time passes by itself.
//!
//! When the node offloads work to background pools — crypto checks to a
//! [`VerifyPool`], committed-block adoption to an apply `TaskPool` — the
//! event loop also drains each pool's completion queue (any number of
//! [`JobSource`]s) and feeds every `(token, ok)` pair back through
//! `Process::on_job_complete` — completions are ordinary events, interleaved
//! with deliveries and timers on the same single protocol thread. The pools
//! are *sharded by consensus instance* (see `VerifyPool::submit_sharded`):
//! each worker owns a private queue, all jobs for one instance land on one
//! worker in submission order, and distinct instances proceed concurrently —
//! so follower-side verification and leader/follower block adoption scale
//! across cores while this event loop, which only consumes completions and
//! applies state, stays single-threaded and deterministic. This runtime seam
//! is the *only* place sharding exists; the simulator never attaches an
//! async pool, so simulated runs are bit-identical for any worker count.
//!
//! # Profiling
//!
//! When a [`LoopProfile`] is attached (see [`NodeHandle::spawn_instrumented`]),
//! the loop buckets its wall time by stage: every handler invocation runs
//! under a root span (messages → `guards`, timer fires → `timer`, completion
//! events → `guards`, control drains → `control`), the protocol core opens
//! sub-spans for the expensive interior work (`inline_verify`, `apply`,
//! `storage_append`), the effects writer opens an `encode_broadcast`
//! sub-span, and waits land in `idle` (a queued message's receive cost lands
//! in `decode`). Sub-span self time is subtracted from the enclosing root, so
//! the stages *partition* busy time — summing them never double counts. Cost
//! when attached is two monotonic clock reads per span; when absent
//! (`--no-profile`, the simulator) the spans compile to a `None` check.

use crate::transport::Transport;
use prestige_core::{LoopProfile, LoopStage};
use prestige_crypto::{JobSource, VerifyPool};
use prestige_sim::{Context, Effects, Emission, Process, SimRng, SimTime, TimerId};
use prestige_types::{Actor, Wire};
use std::collections::{BinaryHeap, HashSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest the event loop sleeps before re-checking control messages.
const IDLE_TICK: Duration = Duration::from_millis(20);

/// Cap on the transport wait while verification jobs are outstanding, so
/// verdicts are consumed with sub-millisecond latency even when no messages
/// arrive to wake the loop.
const VERIFY_POLL_TICK: Duration = Duration::from_micros(200);

/// How many additional queued messages one loop iteration drains after a
/// successful receive, before re-checking timers and control. Bounded so a
/// flood cannot starve timers; large enough to amortize the per-iteration
/// bookkeeping under load.
const MESSAGE_BURST: usize = 64;

/// How many finished verification verdicts one loop iteration consumes
/// before re-checking timers and control. With several verify shards a
/// saturated pool can complete jobs faster than the node applies them; an
/// unbounded drain would starve the batch timer exactly when the pipeline
/// most needs refilling.
const VERIFY_BURST: usize = 128;

/// A pending timer in the node's local heap (min-heap by due time, FIFO on
/// ties via the timer id, mirroring the simulator's tie-break).
#[derive(Debug, PartialEq, Eq)]
struct PendingTimer {
    due: SimTime,
    id: TimerId,
    tag: u64,
}

impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the earliest due.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A boxed closure run against the live node on the runtime thread.
type InspectFn<M> = Box<dyn FnOnce(&mut dyn Process<M>) + Send>;

enum Control<M> {
    Inspect(InspectFn<M>),
    Stop,
}

/// Handle to a node running on its own runtime thread.
pub struct NodeHandle<M> {
    actor: Actor,
    ctl: Sender<Control<M>>,
    join: Option<JoinHandle<Box<dyn Process<M> + Send>>>,
}

impl<M: Wire + Send + 'static> NodeHandle<M> {
    /// Starts a runtime thread driving `node` over `transport`.
    ///
    /// `seed` feeds the node's deterministic RNG stream (used for timeout
    /// randomization); distinct nodes should get distinct seeds, conventionally
    /// derived the same way the simulator does it.
    pub fn spawn(
        node: Box<dyn Process<M> + Send>,
        transport: Box<dyn Transport<M>>,
        seed: u64,
    ) -> Self {
        Self::spawn_instrumented(node, transport, seed, Vec::new(), None)
    }

    /// [`Self::spawn`] with an attached verification pool: the event loop
    /// polls `pool` for finished crypto jobs and delivers each verdict to the
    /// node via `Process::on_job_complete`. Pass the same pool handle the
    /// node submits to (e.g. from `PrestigeServer::spawn_verify_pool`).
    pub fn spawn_with_pool(
        node: Box<dyn Process<M> + Send>,
        transport: Box<dyn Transport<M>>,
        seed: u64,
        pool: Option<Arc<VerifyPool>>,
    ) -> Self {
        let sources: Vec<Arc<dyn JobSource>> =
            pool.into_iter().map(|p| p as Arc<dyn JobSource>).collect();
        Self::spawn_instrumented(node, transport, seed, sources, None)
    }

    /// The general spawn: any number of completion sources (verify pool,
    /// apply pool, …) drained as `Process::on_job_complete` events, plus an
    /// optional always-on stage profiler (see the module docs' *Profiling*
    /// section). Pass the same pool handles the node submits to.
    pub fn spawn_instrumented(
        node: Box<dyn Process<M> + Send>,
        mut transport: Box<dyn Transport<M>>,
        seed: u64,
        sources: Vec<Arc<dyn JobSource>>,
        profile: Option<Arc<LoopProfile>>,
    ) -> Self {
        let actor = transport.me();
        let (ctl_tx, ctl_rx) = channel();
        let join = std::thread::Builder::new()
            .name(format!("prestige-node-{actor}"))
            .spawn(move || run_event_loop(node, &mut *transport, seed, ctl_rx, sources, profile))
            .expect("spawn node runtime thread");
        NodeHandle {
            actor,
            ctl: ctl_tx,
            join: Some(join),
        }
    }

    /// The actor this node runs as.
    pub fn actor(&self) -> Actor {
        self.actor
    }

    /// Runs a closure against the live node state on the runtime thread and
    /// returns its result. Returns `None` if the node has already stopped or
    /// does not answer within `timeout`.
    pub fn inspect_with_timeout<R, F>(&self, f: F, timeout: Duration) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut dyn Process<M>) -> R + Send + 'static,
    {
        let (reply_tx, reply_rx) = channel();
        let request = Control::Inspect(Box::new(move |node: &mut dyn Process<M>| {
            // The receiver may have given up; a failed send is harmless.
            let _ = reply_tx.send(f(node));
        }));
        if self.ctl.send(request).is_err() {
            return None;
        }
        reply_rx.recv_timeout(timeout).ok()
    }

    /// [`Self::inspect_with_timeout`] with a 5-second budget.
    pub fn inspect<R, F>(&self, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut dyn Process<M>) -> R + Send + 'static,
    {
        self.inspect_with_timeout(f, Duration::from_secs(5))
    }

    /// Downcasting convenience over [`Self::inspect`]: runs `f` against the
    /// node as concrete type `T`.
    pub fn inspect_as<T, R, F>(&self, f: F) -> Option<R>
    where
        T: 'static,
        R: Send + 'static,
        F: FnOnce(&T) -> R + Send + 'static,
    {
        self.inspect(move |node| node.as_any().downcast_ref::<T>().map(f))
            .flatten()
    }

    /// Stops the runtime thread and returns the node for post-mortem
    /// inspection.
    pub fn stop(mut self) -> Option<Box<dyn Process<M> + Send>> {
        let _ = self.ctl.send(Control::Stop);
        self.join.take().and_then(|j| j.join().ok())
    }
}

impl<M> Drop for NodeHandle<M> {
    fn drop(&mut self) {
        let _ = self.ctl.send(Control::Stop);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn run_event_loop<M: Wire + Send + 'static>(
    mut node: Box<dyn Process<M> + Send>,
    transport: &mut dyn Transport<M>,
    seed: u64,
    ctl: Receiver<Control<M>>,
    sources: Vec<Arc<dyn JobSource>>,
    profile: Option<Arc<LoopProfile>>,
) -> Box<dyn Process<M> + Send> {
    let me = transport.me();
    let epoch = Instant::now();
    let now = |epoch: Instant| SimTime(epoch.elapsed().as_nanos() as u64);

    // Same per-node stream derivation as `Simulation::add_node`, so timeout
    // randomization behaves comparably across runtimes.
    let salt = match me {
        Actor::Server(s) => s.0 as u64,
        Actor::Client(c) => 0x1_0000_0000u64 + c.0,
    };
    let mut rng = SimRng::new(seed).derive(salt);
    let mut next_timer_id: u64 = 0;
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerId> = HashSet::new();

    let apply = |effects: Effects<M>,
                 timers: &mut BinaryHeap<PendingTimer>,
                 cancelled: &mut HashSet<TimerId>,
                 transport: &mut dyn Transport<M>,
                 profile: &Option<Arc<LoopProfile>>,
                 at: SimTime| {
        for id in effects.cancels {
            cancelled.insert(id);
        }
        for (id, delay, tag) in effects.timers {
            timers.push(PendingTimer {
                due: at + delay,
                id,
                tag,
            });
        }
        if !effects.emissions.is_empty() {
            // Serialization + socket handoff, carved out of the handler's
            // root span so it shows up as its own stage.
            let span = LoopProfile::begin(profile);
            for emission in effects.emissions {
                match emission {
                    Emission::Send(to, message) => transport.send(to, message),
                    // Fan-out goes through the transport's broadcast so an
                    // encode-once implementation serializes the payload a
                    // single time for all recipients.
                    Emission::Broadcast(tos, message) => transport.broadcast(&tos, message),
                }
            }
            LoopProfile::end_sub(profile, span, LoopStage::EncodeBroadcast);
        }
        // effects.cpu intentionally ignored: real time already passed.
    };

    // Start the node.
    {
        let mut effects = Effects::new();
        let t = now(epoch);
        let mut ctx = Context::new(t, me, &mut rng, &mut next_timer_id, &mut effects);
        node.on_start(&mut ctx);
        apply(effects, &mut timers, &mut cancelled, transport, &profile, t);
    }

    loop {
        // Control messages first so stop/inspect stay responsive under load.
        let span = LoopProfile::begin(&profile);
        loop {
            match ctl.try_recv() {
                Ok(Control::Stop) => {
                    if let Some(p) = &profile {
                        p.set_total(epoch.elapsed().as_nanos() as u64);
                    }
                    transport.shutdown();
                    return node;
                }
                Ok(Control::Inspect(f)) => f(&mut *node),
                Err(_) => break,
            }
        }
        LoopProfile::end_root(&profile, span, LoopStage::Control);

        // Deliver finished off-loop jobs (verify verdicts, apply outcomes) as
        // ordinary events, bounded per iteration so a hot pool cannot starve
        // timers. The handler's own bookkeeping lands in `guards`; its heavy
        // interior (apply, storage) carves itself out via sub-spans.
        for source in &sources {
            for _ in 0..VERIFY_BURST {
                let Some((token, ok)) = source.try_done() else {
                    break;
                };
                let span = LoopProfile::begin(&profile);
                let t = now(epoch);
                let mut effects = Effects::new();
                let mut ctx = Context::new(t, me, &mut rng, &mut next_timer_id, &mut effects);
                node.on_job_complete(token, ok, &mut ctx);
                apply(effects, &mut timers, &mut cancelled, transport, &profile, t);
                LoopProfile::end_root(&profile, span, LoopStage::Guards);
            }
        }

        let t = now(epoch);
        if let Some(p) = &profile {
            // Keep the loop's wall-time total fresh so live snapshots (taken
            // while the cluster runs) see a consistent busy/idle split.
            p.set_total(t.0);
        }

        // Fire every timer that is due (skipping cancelled ones).
        while let Some(head) = timers.peek() {
            if head.due > t {
                break;
            }
            let PendingTimer { id, tag, due: _ } = timers.pop().expect("peeked");
            if cancelled.remove(&id) {
                continue;
            }
            // Handlers observe actual wall-clock time, not the scheduled due
            // time — real runtimes cannot hide scheduling lag.
            let span = LoopProfile::begin(&profile);
            let mut effects = Effects::new();
            let mut ctx = Context::new(t, me, &mut rng, &mut next_timer_id, &mut effects);
            node.on_timer(id, tag, &mut ctx);
            apply(effects, &mut timers, &mut cancelled, transport, &profile, t);
            LoopProfile::end_root(&profile, span, LoopStage::Timer);
        }

        // Sleep until the next timer (bounded by the idle tick), waking early
        // for any inbound message; while off-loop jobs are outstanding the
        // wait is capped so completions are consumed promptly.
        let mut wait = match timers.peek() {
            Some(head) => {
                let gap = head.due.since(now(epoch));
                Duration::from_nanos(gap.0).min(IDLE_TICK)
            }
            None => IDLE_TICK,
        };
        if sources.iter().any(|s| s.pending() > 0) {
            wait = wait.min(VERIFY_POLL_TICK);
        }
        // A zero-timeout poll first: a message already queued charges its
        // receive to `decode`; only an actually-empty queue pays the blocking
        // wait, which is `idle` whether or not a message ends the wait.
        let mut span = LoopProfile::begin(&profile);
        let received = match transport.recv_timeout(Duration::ZERO) {
            Some(m) => {
                span = LoopProfile::rollover(&profile, span, LoopStage::Decode);
                Some(m)
            }
            None => {
                let got = transport.recv_timeout(wait);
                if got.is_some() {
                    span = LoopProfile::rollover(&profile, span, LoopStage::Idle);
                } else {
                    LoopProfile::end_root(&profile, span.take(), LoopStage::Idle);
                }
                got
            }
        };
        if let Some((from, message)) = received {
            let t = now(epoch);
            let mut effects = Effects::new();
            let mut ctx = Context::new(t, me, &mut rng, &mut next_timer_id, &mut effects);
            node.on_message(from, message, &mut ctx);
            apply(effects, &mut timers, &mut cancelled, transport, &profile, t);
            LoopProfile::end_root(&profile, span, LoopStage::Guards);
            // Under load, drain a bounded burst of already-queued messages
            // before paying for the timer/control bookkeeping again.
            for _ in 0..MESSAGE_BURST {
                let span = LoopProfile::begin(&profile);
                let Some((from, message)) = transport.recv_timeout(Duration::ZERO) else {
                    LoopProfile::end_root(&profile, span, LoopStage::Decode);
                    break;
                };
                let span = LoopProfile::rollover(&profile, span, LoopStage::Decode);
                let t = now(epoch);
                let mut effects = Effects::new();
                let mut ctx = Context::new(t, me, &mut rng, &mut next_timer_id, &mut effects);
                node.on_message(from, message, &mut ctx);
                apply(effects, &mut timers, &mut cancelled, transport, &profile, t);
                LoopProfile::end_root(&profile, span, LoopStage::Guards);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackNet;
    use prestige_types::ServerId;
    use std::any::Any;

    #[derive(Debug, Clone)]
    struct TestMsg(u64);

    impl Wire for TestMsg {
        fn wire_size(&self) -> usize {
            8
        }
        fn kind(&self) -> &'static str {
            "TestMsg"
        }
    }

    /// Sends one ping on start, echoes everything back incremented, and
    /// counts timer fires.
    struct Echo {
        peer: Option<Actor>,
        received: Vec<u64>,
        ticks: u64,
    }

    impl Process<TestMsg> for Echo {
        fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, TestMsg(1));
            }
            ctx.set_timer(prestige_sim::SimDuration::from_ms(5.0), 7);
        }
        fn on_message(&mut self, from: Actor, message: TestMsg, ctx: &mut Context<TestMsg>) {
            self.received.push(message.0);
            if message.0 < 10 {
                ctx.send(from, TestMsg(message.0 + 1));
            }
        }
        fn on_timer(&mut self, _id: TimerId, tag: u64, _ctx: &mut Context<TestMsg>) {
            assert_eq!(tag, 7);
            self.ticks += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn server(i: u32) -> Actor {
        Actor::Server(ServerId(i))
    }

    #[test]
    fn two_nodes_ping_pong_over_loopback_runtime() {
        let net: LoopbackNet<TestMsg> = LoopbackNet::new();
        let t0 = net.endpoint(server(0));
        let t1 = net.endpoint(server(1));
        let a = NodeHandle::spawn(
            Box::new(Echo {
                peer: Some(server(1)),
                received: vec![],
                ticks: 0,
            }),
            Box::new(t0),
            1,
        );
        let b = NodeHandle::spawn(
            Box::new(Echo {
                peer: None,
                received: vec![],
                ticks: 0,
            }),
            Box::new(t1),
            1,
        );

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let done = a
                .inspect_as::<Echo, _, _>(|e| e.received.contains(&10))
                .unwrap_or(false);
            if done || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        let a_node = a.stop().expect("node a returned");
        let b_node = b.stop().expect("node b returned");
        let a_echo = a_node.as_any().downcast_ref::<Echo>().unwrap();
        let b_echo = b_node.as_any().downcast_ref::<Echo>().unwrap();
        // a sent 1; b received odd numbers, a received even numbers up to 10.
        assert_eq!(a_echo.received, vec![2, 4, 6, 8, 10]);
        assert_eq!(b_echo.received, vec![1, 3, 5, 7, 9]);
        assert!(a_echo.ticks >= 1, "5 ms timer must have fired");
    }

    /// Timers must fire even when no messages arrive, and cancellation must
    /// suppress firing.
    struct TimerProbe {
        fired: Vec<u64>,
    }

    impl Process<TestMsg> for TimerProbe {
        fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
            let keep = ctx.set_timer(prestige_sim::SimDuration::from_ms(10.0), 1);
            let _ = keep;
            let cancel_me = ctx.set_timer(prestige_sim::SimDuration::from_ms(15.0), 2);
            ctx.cancel_timer(cancel_me);
            ctx.set_timer(prestige_sim::SimDuration::from_ms(20.0), 3);
        }
        fn on_message(&mut self, _f: Actor, _m: TestMsg, _ctx: &mut Context<TestMsg>) {}
        fn on_timer(&mut self, _id: TimerId, tag: u64, _ctx: &mut Context<TestMsg>) {
            self.fired.push(tag);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_order_and_respect_cancellation() {
        let net: LoopbackNet<TestMsg> = LoopbackNet::new();
        let handle = NodeHandle::spawn(
            Box::new(TimerProbe { fired: vec![] }),
            Box::new(net.endpoint(server(0))),
            3,
        );
        std::thread::sleep(Duration::from_millis(80));
        let node = handle.stop().expect("node returned");
        let probe = node.as_any().downcast_ref::<TimerProbe>().unwrap();
        assert_eq!(probe.fired, vec![1, 3], "tag 2 was cancelled");
    }
}
