//! Crash-restart integration tests on the *real* runtime: a durable server
//! that dies mid-run comes back from its on-disk WAL, rejoins the live
//! cluster through the sync plane, and converges on the same committed chain
//! as the survivors — while certified checkpoints keep garbage-collecting
//! state underneath it all.

use prestige_net::cluster::{LocalCluster, StoragePlan};
use prestige_types::{ClusterConfig, ServerId};
use std::path::PathBuf;
use std::time::Duration;

/// A per-test scratch directory under the OS temp dir, wiped on entry (a
/// rerun must never replay a stale log) and on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("prestige-restart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Scratch(root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tip_of(cluster: &LocalCluster, id: ServerId) -> u64 {
    cluster
        .committed_chain(id)
        .and_then(|chain| chain.last().map(|(n, _)| *n))
        .unwrap_or(0)
}

#[test]
fn killed_follower_restarts_from_wal_and_rejoins_via_snapshot_sync() {
    let scratch = Scratch::new("follower");
    let follower = ServerId(3);
    // Small batches so the survivors rack up *blocks* quickly (the snapshot
    // escalation triggers on missing blocks, not transactions), and a short
    // checkpoint interval so stable checkpoints + GC form within the run.
    let config = ClusterConfig::new(4)
        .with_batch_size(10)
        .with_checkpoint_interval(8);
    let mut cluster =
        LocalCluster::launch_durable(config, 11, 2, 256, StoragePlan::new(scratch.0.clone()));

    // Phase 1: healthy durable commits.
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 500),
        "durable cluster must commit, got {}",
        cluster.total_committed()
    );
    let pre_crash_tip = tip_of(&cluster, follower);
    assert!(pre_crash_tip > 0, "follower must have applied blocks");
    let before_crash = cluster.total_committed();

    // Phase 2: kill the follower; the remaining three (= 2f + 1) keep
    // committing far enough that the dead node's hole exceeds one sync serve
    // budget (256 blocks) — at batch 10 that is 350+ blocks of traffic — so
    // its eventual catch-up MUST escalate to snapshot sync.
    cluster.crash_server(follower);
    assert!(
        cluster.wait_until(Duration::from_secs(240), |c| c.total_committed()
            >= before_crash + 3500),
        "survivors must keep committing without the follower, got +{}",
        cluster.total_committed() - before_crash
    );
    let survivor_tip = tip_of(&cluster, ServerId(0));

    // Phase 3: restart from disk. The WAL replay happens synchronously
    // inside `restart_server`, so the chain tip visible immediately after
    // proves the node recovered its history from storage, not from peers
    // (sync needs at least one repair interval to move anything).
    cluster.restart_server(follower);
    let replayed_tip = tip_of(&cluster, follower);
    assert!(
        replayed_tip >= pre_crash_tip,
        "restart must replay the WAL: tip {replayed_tip} after restart, \
         {pre_crash_tip} before the crash"
    );

    // Phase 4: the restarted node pages itself forward to the survivors.
    assert!(
        cluster.wait_until(Duration::from_secs(240), |c| tip_of(c, follower)
            >= survivor_tip),
        "restarted follower must catch up: tip {} vs survivor tip {survivor_tip}",
        tip_of(&cluster, follower)
    );
    assert!(
        cluster.total_committed() >= 1000,
        "run must cover at least 1000 transactions, got {}",
        cluster.total_committed()
    );

    // Identical logs across all four servers (the no-fork safety check
    // compares digests at every common height).
    let all = [ServerId(0), ServerId(1), ServerId(2), follower];
    let common = cluster
        .verify_no_fork(&all)
        .expect("restarted cluster must not fork");
    assert!(common >= survivor_tip, "common prefix covers the crash era");

    // The hole was wider than one serve budget, so the catch-up must have
    // gone through the snapshot path at least once.
    let stats = cluster.server_stats(follower).expect("follower stats");
    assert!(
        stats.snapshot_syncs > 0,
        "a 350+ block hole must escalate to snapshot sync"
    );

    // Checkpoint plane: stable checkpoints formed and state was provably
    // pruned beneath them on the survivors.
    let stable = cluster.stable_checkpoint_of(ServerId(0)).unwrap_or(0);
    assert!(stable > 0, "survivors must form stable checkpoints");
    let (ckpts, gc_pruned) = cluster.checkpoint_counters(ServerId(0)).unwrap();
    assert!(ckpts > 0, "survivor must install checkpoints");
    assert!(
        gc_pruned > 0,
        "committed-tx dedup keys must be GC'd below the stable checkpoint"
    );
    // The restarted node runs a live WAL again and adopts a stable
    // checkpoint (served inside the snapshot response or a live cert).
    let storage = cluster.storage_stats(follower).expect("follower WAL stats");
    assert!(storage.records > 0, "restarted node must append to its WAL");
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c
            .stable_checkpoint_of(follower)
            .unwrap_or(0)
            > 0),
        "restarted follower must adopt a stable checkpoint"
    );

    cluster.shutdown();
}

#[test]
fn torn_wal_tail_is_truncated_and_the_node_still_rejoins() {
    let scratch = Scratch::new("torn");
    let follower = ServerId(2);
    let config = ClusterConfig::new(4)
        .with_batch_size(25)
        .with_checkpoint_interval(16);
    let mut cluster =
        LocalCluster::launch_durable(config, 29, 2, 128, StoragePlan::new(scratch.0.clone()));

    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 400),
        "durable cluster must commit, got {}",
        cluster.total_committed()
    );

    // Power-cut signature: kill the node, then chop bytes off the end of its
    // newest segment so the final record is torn mid-frame. Reopening must
    // truncate the tear instead of refusing the log wholesale.
    cluster.crash_server(follower);
    let cut = cluster
        .truncate_wal_tail(follower, 37)
        .expect("tail truncation");
    assert!(cut > 0, "the WAL must have had bytes to tear");

    let before = cluster.total_committed();
    assert!(
        cluster.wait_until(Duration::from_secs(120), |c| c.total_committed()
            >= before + 300),
        "survivors must keep committing"
    );
    let survivor_tip = tip_of(&cluster, ServerId(0));

    cluster.restart_server(follower);
    assert!(
        cluster.wait_until(Duration::from_secs(240), |c| tip_of(c, follower)
            >= survivor_tip),
        "node with a torn tail must still rejoin: tip {} vs {survivor_tip}",
        tip_of(&cluster, follower)
    );
    let all = [ServerId(0), ServerId(1), follower, ServerId(3)];
    cluster
        .verify_no_fork(&all)
        .expect("torn-tail restart must not fork");

    cluster.shutdown();
}
