//! Adversarial integration tests (acceptance criterion of the chaos
//! tentpole): the paper's attacks run on *real* node runtimes, composed with
//! injected network faults, and the cluster stays safe and live.
//!
//! The headline test is the issue's scenario: an F4 attacker campaigns under
//! S1 (attack at every opportunity) while a 500 ms partition isolates the
//! leader mid-run — the cluster must commit ≥ 1000 transactions after the
//! fault window with identical committed logs on all correct nodes.

use prestige_core::{AttackStrategy, ByzantineBehavior};
use prestige_net::cluster::LocalCluster;
use prestige_net::NetChaos;
use prestige_types::{Actor, ClientId, ClusterConfig, ServerId, TimeoutConfig, ViewChangePolicy};
use std::time::Duration;

/// The paper's fast profile plus a timing rotation policy, which is what
/// gives an F4 attacker its periodic campaign windows.
fn adversarial_config(n: u32) -> ClusterConfig {
    ClusterConfig::new(n)
        .with_batch_size(100)
        .with_timeouts(TimeoutConfig::fast())
        .with_policy(ViewChangePolicy::Timing {
            interval_ms: 1500.0,
        })
}

/// Every actor of a 4-server / `clients`-client cluster except `target`.
fn everyone_but(target: ServerId, n: u32, clients: u64) -> Vec<Actor> {
    let mut others: Vec<Actor> = (0..n)
        .filter(|&i| ServerId(i) != target)
        .map(|i| Actor::Server(ServerId(i)))
        .collect();
    others.extend((0..clients).map(|c| Actor::Client(ClientId(c))));
    others
}

#[test]
fn f4_s1_attacker_with_leader_partition_recovers_without_fork() {
    let n = 4u32;
    let clients = 2u64;
    let mut behaviors = vec![ByzantineBehavior::Correct; n as usize];
    behaviors[3] = ByzantineBehavior::RepeatedVcQuiet(AttackStrategy::Always);
    let chaos = NetChaos::new();
    let cluster = LocalCluster::launch_adversarial(
        adversarial_config(n),
        42,
        clients,
        100,
        &behaviors,
        Some(chaos.clone()),
    );
    assert_eq!(
        cluster.behavior_of(ServerId(3)),
        ByzantineBehavior::RepeatedVcQuiet(AttackStrategy::Always)
    );
    assert_eq!(
        cluster.correct_servers(),
        vec![ServerId(0), ServerId(1), ServerId(2)]
    );

    // Phase 1: commits flow with the attacker aboard.
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 500),
        "cluster must commit with an F4/S1 attacker aboard, got {}",
        cluster.total_committed()
    );

    // Phase 2: a 500 ms symmetric partition isolates the current leader from
    // every other node (servers and clients), healing on schedule.
    let observer = cluster.correct_servers()[0];
    let (_, leader) = cluster.view_of(observer).expect("observer answers");
    chaos.isolate(Actor::Server(leader), &everyone_but(leader, n, clients));
    chaos.heal_after(Duration::from_millis(500));
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        !chaos.is_partitioned(),
        "the scheduled heal must have dissolved the partition"
    );
    let committed_after_fault = cluster.total_committed();

    // Phase 3: the issue's acceptance bar — ≥ 1000 transactions committed
    // after the fault window.
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| {
            c.total_committed() >= committed_after_fault + 1000
        }),
        "cluster must commit >= 1000 tx after the fault window: {} -> {}",
        committed_after_fault,
        cluster.total_committed()
    );

    // The attacker really campaigned (the rotation policy keeps opening
    // windows, so this converges quickly).
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| {
            c.server_stats(ServerId(3))
                .map(|s| s.campaigns_started >= 1)
                .unwrap_or(false)
        }),
        "the F4/S1 attacker must have launched at least one campaign"
    );

    // Phase 4: safety — every correct server advanced past the fault window
    // and all committed logs are identical over their common prefix.
    let correct = cluster.correct_servers();
    let target_tip = cluster
        .committed_chain(observer)
        .and_then(|chain| chain.last().map(|(tip, _)| *tip))
        .expect("observer has a chain");
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| {
            correct.iter().all(|&id| {
                c.committed_chain(id)
                    .and_then(|chain| chain.last().map(|(tip, _)| *tip))
                    .is_some_and(|tip| tip >= target_tip)
            })
        }),
        "every correct server must catch up past sequence {target_tip}"
    );
    let prefix = cluster
        .verify_no_fork(&correct)
        .expect("correct servers must agree on every common sequence number");
    assert!(
        prefix >= target_tip,
        "identical prefix {prefix} must cover the post-fault tip {target_tip}"
    );
    cluster.shutdown();
}

#[test]
fn equivocating_attacker_on_lossy_links_cannot_stop_or_fork_the_cluster() {
    // F3 (equivocation) composed with 1% link loss and 2±2 ms delay. With an
    // equivocator aboard, every delivery to a *correct* follower is
    // quorum-critical (3 of 4 with one liar means no slack), so each lost
    // protocol message wedges its instance until the client-complaint →
    // view-change path re-proposes it — loss must cost throughput, never
    // safety. 1% keeps those recovery cycles rare enough for a brisk test;
    // see `scenarios/f4_s2_lossy.toml` for the tunable version.
    let n = 4u32;
    let mut behaviors = vec![ByzantineBehavior::Correct; n as usize];
    behaviors[3] = ByzantineBehavior::Equivocate;
    let chaos = NetChaos::new();
    chaos.set_loss(0.01);
    chaos.set_link_delay(Duration::from_millis(2), Duration::from_millis(2));
    let cluster = LocalCluster::launch_adversarial(
        ClusterConfig::new(n)
            .with_batch_size(100)
            .with_timeouts(TimeoutConfig::fast()),
        7,
        2,
        64,
        &behaviors,
        Some(chaos),
    );
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 500),
        "lossy links + an equivocator must not stop the cluster, got {}",
        cluster.total_committed()
    );
    cluster
        .verify_no_fork(&cluster.correct_servers())
        .expect("no fork under loss and equivocation");
    cluster.shutdown();
}
