//! In-process TCP cluster tests (acceptance criterion of the multi-core hot
//! path): the sharded verify pool and the event-driven TCP writer compose
//! end-to-end, and commit *order* is identical across replicas even when
//! verification runs concurrently across instances and a leader dies mid-run.
//!
//! The ordering proof is the digest chain: every committed block's digest
//! chains over its predecessor, so replicas whose `(seq, digest)` logs agree
//! at every shared height (`verify_no_fork`) committed the same blocks in the
//! same order. A reorder anywhere would change every digest after it.

use prestige_net::cluster::{LocalCluster, TcpCluster};
use prestige_types::{ClusterConfig, ServerId, TimeoutConfig};
use std::time::Duration;

fn sharded_config(n: u32) -> ClusterConfig {
    // The paper's fast timeout profile plus the multi-core hot path: a deep
    // replication window and two verify workers, so Ord/Cmt checks for
    // different instances really do run concurrently on the followers.
    ClusterConfig::new(n)
        .with_batch_size(100)
        .with_timeouts(TimeoutConfig::fast())
        .with_pipeline_depth(8)
        .with_verify_workers(2)
}

/// A committed chain snapshot must be strictly ordered by sequence number —
/// the direct "no commit reorder" check on one replica's log.
fn assert_strictly_ordered(id: ServerId, chain: &[(u64, prestige_types::Digest)]) {
    for pair in chain.windows(2) {
        assert!(
            pair[0].0 < pair[1].0,
            "server {id:?} committed out of order: seq {} then {}",
            pair[0].0,
            pair[1].0
        );
    }
}

#[test]
fn tcp_cluster_with_sharded_verify_survives_leader_kill_without_reorder() {
    let mut cluster =
        TcpCluster::launch(sharded_config(4), 42, 2, 64).expect("bind TCP cluster on loopback");

    // Phase 1: commits must flow over real sockets with sharded verification.
    let reached = cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 600);
    let committed_before = cluster.total_committed();
    assert!(
        reached,
        "TCP cluster must commit >= 600 transactions, got {committed_before}"
    );

    // The event-driven writer must actually be on the path: vectored writes
    // happened, and both flush modes (idle single-frame and coalesced
    // multi-frame) were exercised under consensus traffic.
    let totals = cluster.transport_totals();
    assert!(
        totals.writev_calls > 0,
        "no vectored writes recorded: {totals:?}"
    );
    assert!(
        totals.flushes_idle + totals.flushes_full > 0,
        "no writer flushes recorded: {totals:?}"
    );

    // Followers must have offloaded verification to the sharded pool.
    let offloaded: u64 = cluster
        .live_servers()
        .iter()
        .filter_map(|&id| cluster.server_stats(id))
        .map(|s| s.verify_offloaded)
        .sum();
    assert!(offloaded > 0, "verify pool attached but nothing offloaded");

    // Phase 2: kill the leader. Peers see broken streams + a dead listener.
    let (view_before, leader_before) = cluster.view_of(ServerId(1)).expect("server 1 answers");
    cluster.crash_server(leader_before);
    assert_eq!(cluster.live_servers().len(), 3);

    let survived = cluster.wait_until(Duration::from_secs(60), |c| {
        c.live_servers().iter().all(|&id| {
            c.view_of(id)
                .map(|(view, leader)| view > view_before && leader != leader_before)
                .unwrap_or(false)
        })
    });
    assert!(
        survived,
        "survivors must elect a new leader over TCP after the kill"
    );

    // Phase 3: commits resume, and the survivors' logs agree with no fork —
    // i.e. concurrent verification plus the kill reordered nothing.
    let resumed = cluster.wait_until(Duration::from_secs(60), |c| {
        c.total_committed() >= committed_before + 200
    });
    assert!(
        resumed,
        "commits must resume after the view change: stuck at {}",
        cluster.total_committed()
    );

    let survivors = cluster.live_servers();
    for &id in &survivors {
        let chain = cluster.committed_chain(id).expect("chain snapshot");
        assert_strictly_ordered(id, &chain);
    }
    let common = cluster
        .verify_no_fork(&survivors)
        .expect("no fork across survivors");
    assert!(
        common > 0,
        "survivors must share a non-empty committed prefix"
    );

    cluster.shutdown();
}

#[test]
fn tcp_cluster_with_apply_workers_survives_leader_kill_without_fork() {
    // The off-loop apply stage over real sockets: committed-block adoption
    // runs on two worker threads sharded by instance while frames cross TCP.
    // Commit order must survive both the concurrency and a leader kill —
    // proven by identical digest chains at every shared height.
    let config = sharded_config(4)
        .with_pipeline_depth(4)
        .with_apply_workers(2);
    let mut cluster = TcpCluster::launch(config, 42, 2, 64).expect("bind TCP cluster on loopback");

    let reached = cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 600);
    let committed_before = cluster.total_committed();
    assert!(
        reached,
        "TCP apply-worker cluster must commit >= 600 transactions, got {committed_before}"
    );

    // Adoption must actually run off-loop somewhere in the cluster.
    let offloaded: u64 = cluster
        .live_servers()
        .iter()
        .filter_map(|&id| cluster.server_stats(id))
        .map(|s| s.applies_offloaded)
        .sum();
    assert!(
        offloaded > 0,
        "apply pool attached but no blocks were adopted off-loop"
    );

    // The always-on profiler must be attributing the loop's busy time.
    let profile = cluster.loop_profile();
    assert!(profile.busy_nanos() > 0, "profiler saw no busy time");
    assert!(
        profile.coverage() >= 0.90,
        "stage coverage too low: {:.3}",
        profile.coverage()
    );

    let (view_before, leader_before) = cluster.view_of(ServerId(1)).expect("server 1 answers");
    cluster.crash_server(leader_before);
    let survived = cluster.wait_until(Duration::from_secs(60), |c| {
        c.live_servers().iter().all(|&id| {
            c.view_of(id)
                .map(|(view, leader)| view > view_before && leader != leader_before)
                .unwrap_or(false)
        })
    });
    assert!(
        survived,
        "survivors must elect a new leader over TCP after the kill"
    );
    let resumed = cluster.wait_until(Duration::from_secs(60), |c| {
        c.total_committed() >= committed_before + 200
    });
    assert!(
        resumed,
        "commits must resume with off-loop apply: stuck at {}",
        cluster.total_committed()
    );

    let survivors = cluster.live_servers();
    for &id in &survivors {
        assert_strictly_ordered(id, &cluster.committed_chain(id).expect("chain snapshot"));
    }
    let common = cluster
        .verify_no_fork(&survivors)
        .expect("no fork across survivors");
    assert!(
        common > 0,
        "survivors must share a non-empty committed prefix"
    );
    cluster.shutdown();
}

#[test]
fn tcp_and_loopback_clusters_agree_on_commit_safety_with_sharded_verify() {
    // The same configuration on both transports: the runtime seam (sharded
    // pool, refill batching) must behave identically whether frames cross a
    // serialized TCP socket or an in-process channel. Each cluster must reach
    // the commit milestone and keep fork-free, strictly ordered logs.
    let target = 300u64;

    let tcp =
        TcpCluster::launch(sharded_config(4), 7, 1, 64).expect("bind TCP cluster on loopback");
    assert!(
        tcp.wait_until(Duration::from_secs(60), |c| c.total_committed() >= target),
        "TCP cluster stuck at {}",
        tcp.total_committed()
    );
    let tcp_servers = tcp.live_servers();
    for &id in &tcp_servers {
        assert_strictly_ordered(id, &tcp.committed_chain(id).expect("chain"));
    }
    let tcp_common = tcp.verify_no_fork(&tcp_servers).expect("no fork over TCP");
    assert!(tcp_common > 0);
    tcp.shutdown();

    let loopback = LocalCluster::launch(sharded_config(4), 7, 1, 64);
    assert!(
        loopback.wait_until(Duration::from_secs(60), |c| c.total_committed() >= target),
        "loopback cluster stuck at {}",
        loopback.total_committed()
    );
    let lb_servers = loopback.live_servers();
    for &id in &lb_servers {
        assert_strictly_ordered(id, &loopback.committed_chain(id).expect("chain"));
    }
    let lb_common = loopback
        .verify_no_fork(&lb_servers)
        .expect("no fork over loopback");
    assert!(lb_common > 0);

    // Loopback never touches the writer loop; its writer counters stay zero
    // while delivery counters are live. (The TCP counters were asserted
    // non-zero in the leader-kill test.)
    let lb_totals = loopback.transport_totals();
    assert!(lb_totals.sent > 0 && lb_totals.received > 0);
    assert_eq!(lb_totals.writev_calls, 0);
    loopback.shutdown();
}
