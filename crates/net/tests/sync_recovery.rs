//! Recovery-plane integration tests: a wedged pipeline on the *real*
//! runtime heals through sync/retransmission alone — no view change.

use prestige_net::cluster::LocalCluster;
use prestige_net::NetChaos;
use prestige_types::{Actor, ClientId, ClusterConfig, ServerId, View};
use std::time::Duration;

/// Every actor except the given servers (the far side of the partition).
fn everyone_but(targets: &[ServerId], n: u32, clients: u64) -> Vec<Actor> {
    let mut others: Vec<Actor> = (0..n)
        .filter(|&i| !targets.contains(&ServerId(i)))
        .map(|i| Actor::Server(ServerId(i)))
        .collect();
    others.extend((0..clients).map(|c| Actor::Client(ClientId(c))));
    others
}

#[test]
fn wedged_pipeline_recovers_via_sync_alone_without_view_change() {
    // Cut BOTH followers s2 and s3 away mid-run: the leader keeps only one
    // peer, so no quorum forms and the pipeline wedges with a full window.
    // After the heal, the leader's stalled-instance retransmission plus the
    // followers' repair-timer syncs must revive replication — while every
    // server stays in view 1 (default timeouts give the client-complaint →
    // view-change path no time to fire, so any recovery observed is the
    // recovery plane's).
    let n = 4u32;
    let clients = 2u64;
    let chaos = NetChaos::new();
    let config = ClusterConfig::new(n).with_batch_size(50);
    let cluster =
        LocalCluster::launch_adversarial(config, 13, clients, 64, &[], Some(chaos.clone()));

    // Phase 1: healthy commits.
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 500),
        "cluster must commit before the fault, got {}",
        cluster.total_committed()
    );

    // Phase 2: wedge the pipeline — both followers unreachable for 300 ms.
    let cut = [ServerId(2), ServerId(3)];
    let others = everyone_but(&cut, n, clients);
    let me: Vec<Actor> = cut.iter().map(|&s| Actor::Server(s)).collect();
    chaos.partition_between(&me, &others);
    chaos.heal_after(Duration::from_millis(300));
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        !chaos.is_partitioned(),
        "the scheduled heal must have fired"
    );
    let committed_at_heal = cluster.total_committed();

    // Phase 3: replication revives through retransmission + sync.
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| {
            c.total_committed() >= committed_at_heal + 1000
        }),
        "the wedged pipeline must recover through sync: {} -> {}",
        committed_at_heal,
        cluster.total_committed()
    );

    // Phase 4: recovery used NO view change, and the cut followers caught
    // all the way up with identical logs.
    for i in 0..n {
        let id = ServerId(i);
        let (view, leader) = cluster.view_of(id).expect("server answers");
        assert_eq!(view, View(1), "s{i} must still be in view 1");
        assert_eq!(leader, ServerId(0), "s{i} must still follow s0");
        let stats = cluster.server_stats(id).expect("stats");
        assert_eq!(
            stats.views_installed, 0,
            "s{i} must not have installed any view"
        );
    }
    let target_tip = cluster
        .committed_chain(ServerId(0))
        .and_then(|chain| chain.last().map(|(tip, _)| *tip))
        .expect("leader has a chain");
    let all: Vec<ServerId> = (0..n).map(ServerId).collect();
    assert!(
        cluster.wait_until(Duration::from_secs(30), |c| {
            all.iter().all(|&id| {
                c.committed_chain(id)
                    .and_then(|chain| chain.last().map(|(tip, _)| *tip))
                    .is_some_and(|tip| tip >= target_tip)
            })
        }),
        "every server must catch up past sequence {target_tip} via sync"
    );
    let prefix = cluster
        .verify_no_fork(&all)
        .expect("identical logs after sync-only recovery");
    assert!(prefix >= target_tip);
    cluster.shutdown();
}
