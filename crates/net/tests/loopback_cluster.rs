//! Integration test for the real networking runtime (acceptance criterion of
//! the `prestige-net` tentpole): a 4-node PrestigeBFT cluster running on real
//! node runtimes over the loopback transport
//!
//! 1. commits ≥ 1000 transactions end-to-end, then
//! 2. survives a leader kill through the active view-change protocol and
//!    keeps committing under the new leader.
//!
//! Wall-clock budget: the commit phase takes a few hundred milliseconds on
//! loopback; the view change is dominated by the (shortened) client/follower
//! timeouts and completes within a few seconds.

use prestige_net::cluster::LocalCluster;
use prestige_types::{ClusterConfig, ServerId, TimeoutConfig, View};
use std::time::Duration;

fn fast_config(n: u32) -> ClusterConfig {
    // The paper's fast profile: timeouts in [300, 600] ms, 400 ms client
    // patience — keeps the post-kill view change quick without making correct
    // nodes trigger-happy on a loopback network with microsecond RTTs.
    ClusterConfig::new(n)
        .with_batch_size(100)
        .with_timeouts(TimeoutConfig::fast())
}

#[test]
fn four_node_cluster_commits_1000_tx_and_survives_leader_kill() {
    let mut cluster = LocalCluster::launch(fast_config(4), 42, 2, 100);

    // Phase 1: throughput. Two closed-loop clients with 100 proposals in
    // flight each must push ≥ 1000 commits quickly.
    let reached = cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 1000);
    let committed_before = cluster.total_committed();
    assert!(
        reached,
        "cluster must commit >= 1000 transactions on the real runtime, got {committed_before}"
    );

    // The whole cluster should agree on the view and its leader.
    let (view_before, leader_before) = cluster.view_of(ServerId(1)).expect("server 1 answers");
    assert!(view_before >= View::INITIAL);

    // Phase 2: kill the leader abruptly (runtime stopped, endpoint
    // deregistered — indistinguishable from a killed process).
    cluster.crash_server(leader_before);
    assert_eq!(cluster.live_servers().len(), 3);

    // The active view change must elect a new leader among the survivors.
    let survived = cluster.wait_until(Duration::from_secs(60), |c| {
        c.live_servers().iter().all(|&id| {
            c.view_of(id)
                .map(|(view, leader)| view > view_before && leader != leader_before)
                .unwrap_or(false)
        })
    });
    let views: Vec<_> = cluster
        .live_servers()
        .iter()
        .map(|&id| (id, cluster.view_of(id)))
        .collect();
    assert!(
        survived,
        "surviving servers must enter a higher view under a new leader; states: {views:?}"
    );

    // Phase 3: the cluster keeps committing client transactions under the
    // new leader.
    let resumed = cluster.wait_until(Duration::from_secs(60), |c| {
        c.total_committed() >= committed_before + 200
    });
    let committed_after = cluster.total_committed();
    assert!(
        resumed,
        "commits must resume after the view change: {committed_before} -> {committed_after}"
    );

    // Sanity on the survivors' server-side stats: someone won an election.
    let elections: u64 = cluster
        .live_servers()
        .iter()
        .filter_map(|&id| cluster.server_stats(id))
        .map(|s| s.elections_won)
        .sum();
    assert!(elections >= 1, "a survivor must have won the election");

    let final_stats = cluster.shutdown();
    let total: u64 = final_stats.values().map(|s| s.committed_tx).sum();
    assert!(total >= committed_before + 200);
}

#[test]
fn pipelined_cluster_with_verify_pool_commits_and_survives_leader_kill() {
    // The new hot path end to end: a deep replication window plus off-loop
    // verification workers. The cluster must reach the same milestones as the
    // inline stop-and-wait configuration — commits flow, the leader kill is
    // survived through the active view change, and commits resume.
    let config = fast_config(4).with_pipeline_depth(8).with_verify_workers(2);
    let mut cluster = LocalCluster::launch(config, 42, 2, 100);

    let reached = cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 1000);
    let committed_before = cluster.total_committed();
    assert!(
        reached,
        "pipelined cluster must commit >= 1000 transactions, got {committed_before}"
    );

    // Offloading must actually be exercised on the followers.
    let offloaded: u64 = cluster
        .live_servers()
        .iter()
        .filter_map(|&id| cluster.server_stats(id))
        .map(|s| s.verify_offloaded)
        .sum();
    assert!(
        offloaded > 0,
        "verify pool attached but no jobs were offloaded"
    );

    let (view_before, leader_before) = cluster.view_of(ServerId(1)).expect("server 1 answers");
    cluster.crash_server(leader_before);
    let survived = cluster.wait_until(Duration::from_secs(60), |c| {
        c.live_servers().iter().all(|&id| {
            c.view_of(id)
                .map(|(view, leader)| view > view_before && leader != leader_before)
                .unwrap_or(false)
        })
    });
    assert!(
        survived,
        "pipelined cluster must elect a new leader after the kill"
    );
    let resumed = cluster.wait_until(Duration::from_secs(60), |c| {
        c.total_committed() >= committed_before + 200
    });
    assert!(
        resumed,
        "commits must resume with pipelining enabled: stuck at {}",
        cluster.total_committed()
    );
    cluster.shutdown();
}

#[test]
fn cluster_with_apply_workers_survives_leader_kill_without_fork() {
    // The off-loop apply stage end to end: committed-block adoption runs on
    // two worker threads, sharded by instance, while the protocol loop keeps
    // handling messages. The cluster must commit, survive a leader kill, and
    // — the ordering proof — every survivor's digest-chained log must agree
    // at every shared height.
    let config = fast_config(4)
        .with_pipeline_depth(4)
        .with_verify_workers(2)
        .with_apply_workers(2);
    let mut cluster = LocalCluster::launch(config, 42, 2, 100);

    let reached = cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 1000);
    let committed_before = cluster.total_committed();
    assert!(
        reached,
        "apply-worker cluster must commit >= 1000 transactions, got {committed_before}"
    );

    // Adoption must actually run off-loop somewhere.
    let offloaded: u64 = cluster
        .live_servers()
        .iter()
        .filter_map(|&id| cluster.server_stats(id))
        .map(|s| s.applies_offloaded)
        .sum();
    assert!(
        offloaded > 0,
        "apply pool attached but no blocks were adopted off-loop"
    );

    // The always-on profiler must be attributing the loop's busy time.
    let profile = cluster.loop_profile();
    assert!(profile.busy_nanos() > 0, "profiler saw no busy time");
    assert!(
        profile.coverage() >= 0.90,
        "stage coverage too low: {:.3}",
        profile.coverage()
    );

    let (view_before, leader_before) = cluster.view_of(ServerId(1)).expect("server 1 answers");
    cluster.crash_server(leader_before);
    let survived = cluster.wait_until(Duration::from_secs(60), |c| {
        c.live_servers().iter().all(|&id| {
            c.view_of(id)
                .map(|(view, leader)| view > view_before && leader != leader_before)
                .unwrap_or(false)
        })
    });
    assert!(
        survived,
        "apply-worker cluster must elect a new leader after the kill"
    );
    let resumed = cluster.wait_until(Duration::from_secs(60), |c| {
        c.total_committed() >= committed_before + 200
    });
    assert!(
        resumed,
        "commits must resume with off-loop apply: stuck at {}",
        cluster.total_committed()
    );

    // Fork-freedom across survivors: identical digests at every shared
    // height, hence identical commit order.
    let survivors = cluster.live_servers();
    let common = cluster
        .verify_no_fork(&survivors)
        .expect("survivors' logs must agree");
    assert!(common > 0, "survivors must share a committed prefix");
    cluster.shutdown();
}

#[test]
fn cluster_reports_consistent_progress_across_servers() {
    // Smaller smoke check: all four servers observe committed transactions,
    // not just the leader, and client latency statistics are populated.
    let cluster = LocalCluster::launch(fast_config(4), 7, 1, 64);
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c.total_committed() >= 300),
        "cluster must commit transactions"
    );
    for id in cluster.live_servers() {
        let stats = cluster.server_stats(id).expect("server answers");
        assert!(
            stats.committed_tx > 0,
            "server {id} must observe commits, stats: {stats:?}"
        );
    }
    let client_stats = cluster.client_stats(prestige_types::ClientId(0)).unwrap();
    assert!(client_stats.committed_tx >= 300);
    assert!(client_stats.mean_latency_ms() > 0.0);
    cluster.shutdown();
}
