//! Wire compatibility of the encode-once broadcast path.
//!
//! The zero-copy hot path must not change what travels on the wire: a frame
//! encoded once and shared across peers has to be byte-identical to a frame
//! encoded separately for each peer, and TCP peers receiving a broadcast must
//! decode exactly the message that per-peer sends would have delivered.

use prestige_net::{BufferPool, FrameCodec, TcpConfig, TcpTransport, Transport};
use prestige_types::{
    Actor, ClientId, Digest, Message, Proposal, SeqNum, ServerId, Transaction, View,
};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn server(i: u32) -> Actor {
    Actor::Server(ServerId(i))
}

fn ord_message(batch: usize) -> Message {
    Message::Ord {
        view: View(7),
        n: SeqNum(42),
        batch: Arc::new(
            (0..batch)
                .map(|i| {
                    Proposal::new(
                        Transaction::with_size(ClientId(3), i as u64, 32),
                        Digest([i as u8; 32]),
                    )
                })
                .collect(),
        ),
        digest: Digest([9u8; 32]),
        sig: [4u8; 32],
    }
}

/// A shared (encode-once) frame is byte-identical to a per-peer encoded
/// frame and decodes to the same message.
#[test]
fn shared_frame_equals_per_peer_frame() {
    let codec = FrameCodec::new();
    let pool = BufferPool::new();
    let from = server(0);
    for batch in [0usize, 1, 10, 250] {
        let msg = ord_message(batch);
        let per_peer = codec.encode(from, &msg).unwrap();
        let shared = codec.encode_shared(from, &msg, &pool).unwrap();
        assert_eq!(
            &shared[..],
            per_peer.as_slice(),
            "encode-once must not change wire bytes (batch={batch})"
        );
        let (sender, decoded, used) = codec.decode::<Message>(&shared).unwrap().unwrap();
        assert_eq!(sender, from);
        assert_eq!(decoded, msg);
        assert_eq!(used, shared.len());
    }
}

fn free_ports(n: usize) -> Vec<SocketAddr> {
    // Bind ephemeral listeners and release them so each port is free.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(SocketAddr::from(([127, 0, 0, 1], 0))).unwrap())
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

/// A TCP broadcast reaches every peer with the exact message per-peer sends
/// would deliver, and unicast sends still interleave correctly.
#[test]
fn tcp_broadcast_delivers_identical_messages_to_all_peers() {
    let addrs = free_ports(3);
    let peers_of = |me: usize| -> HashMap<Actor, SocketAddr> {
        (0..3)
            .filter(|&i| i != me)
            .map(|i| (server(i as u32), addrs[i]))
            .collect()
    };
    let mut a: TcpTransport<Message> =
        TcpTransport::bind(server(0), TcpConfig::new(addrs[0], peers_of(0))).unwrap();
    let mut b: TcpTransport<Message> =
        TcpTransport::bind(server(1), TcpConfig::new(addrs[1], peers_of(1))).unwrap();
    let mut c: TcpTransport<Message> =
        TcpTransport::bind(server(2), TcpConfig::new(addrs[2], peers_of(2))).unwrap();

    let broadcast_msg = ord_message(50);
    let unicast_msg = ord_message(1);
    a.broadcast(&[server(1), server(2)], broadcast_msg.clone());
    a.send(server(1), unicast_msg.clone());

    let recv_n = |t: &mut TcpTransport<Message>, n: usize| -> Vec<Message> {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < n && Instant::now() < deadline {
            if let Some((from, m)) = t.recv_timeout(Duration::from_millis(50)) {
                assert_eq!(from, server(0));
                got.push(m);
            }
        }
        got
    };

    let at_b = recv_n(&mut b, 2);
    assert_eq!(at_b, vec![broadcast_msg.clone(), unicast_msg]);
    let at_c = recv_n(&mut c, 1);
    assert_eq!(at_c, vec![broadcast_msg]);

    // Two broadcast recipients + one unicast = three sends counted.
    assert_eq!(a.stats().snapshot().0, 3);
    assert_eq!(a.stats().snapshot().2, 0, "nothing dropped");
    a.shutdown();
    b.shutdown();
    c.shutdown();
}
