//! Quickstart: a 4-server PrestigeBFT cluster committing client transactions.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The example builds the smallest interesting cluster (n = 4, f = 1), drives
//! it with two closed-loop clients for five simulated seconds, and prints the
//! throughput, latency, and per-server state — the "hello world" of the
//! library's public API.

use prestigebft::prelude::*;

fn main() {
    let seed = 2024;
    let n = 4u32;
    let config = ClusterConfig::new(n).with_batch_size(100);
    let registry = KeyRegistry::new(seed, n, 2);

    // The simulated network mirrors the paper's cloud LAN: ~400 MB/s, < 2 ms.
    let mut sim: Simulation<Message> = Simulation::new(seed, NetworkConfig::lan());

    for i in 0..n {
        let server = PrestigeServer::new(ServerId(i), config.clone(), registry.clone(), seed);
        sim.add_node(Actor::Server(ServerId(i)), Box::new(server));
    }
    for c in 0..2u64 {
        let client_cfg = ClientConfig::new(ClientId(c), config.replicas.clone(), 32, 100);
        sim.add_node(
            Actor::Client(ClientId(c)),
            Box::new(PrestigeClient::new(client_cfg, &registry)),
        );
    }

    let horizon = 5.0;
    sim.run_until(SimTime::from_secs(horizon));

    println!("== PrestigeBFT quickstart (n = {n}, {horizon} simulated seconds) ==\n");
    for i in 0..n {
        let server: &PrestigeServer = sim.node_as(Actor::Server(ServerId(i))).unwrap();
        println!(
            "{}: role = {:?}, view = {}, committed blocks = {}, committed tx = {}, rp = {}",
            ServerId(i),
            server.role(),
            server.current_view(),
            server.stats().committed_blocks,
            server.stats().committed_tx,
            server.current_rp(),
        );
    }
    let reference: &PrestigeServer = sim.node_as(Actor::Server(ServerId(1))).unwrap();
    let tps = reference.stats().committed_tx as f64 / horizon;
    println!("\ncluster throughput ≈ {tps:.0} TPS");

    for c in 0..2u64 {
        let client: &PrestigeClient = sim.node_as(Actor::Client(ClientId(c))).unwrap();
        println!(
            "{}: confirmed {} tx, mean latency {:.2} ms (p99 {:.2} ms)",
            ClientId(c),
            client.stats().committed_tx,
            client.stats().mean_latency_ms(),
            client.stats().percentile_latency_ms(99.0),
        );
    }
    println!(
        "\nnetwork: {} messages delivered, {:.1} MB total",
        sim.stats().delivered_total(),
        sim.stats().bytes_total() as f64 / 1.0e6
    );
}
