//! Active view change under a leader crash — the paper's motivating scenario.
//!
//! Run with `cargo run --release --example leader_failure`.
//!
//! The initial leader (S1) is crashed two seconds into the run. Clients stop
//! receiving notifications, complain, the followers confirm the failure
//! (`ConfVC`/`ReVC` → conf_QC), campaign with reputation-determined work, and
//! an up-to-date correct server is elected — no fixed rotation schedule, no
//! handover to an unavailable server. The example prints the timeline of
//! views and throughput before and after the crash.

use prestigebft::prelude::*;

fn main() {
    let seed = 7;
    let n = 4u32;
    let mut config = ClusterConfig::new(n).with_batch_size(100);
    // Fast failure detection so the example's timeline is easy to read.
    config.timeouts = TimeoutConfig {
        base_timeout_ms: 300.0,
        randomization_ms: 300.0,
        client_timeout_ms: 400.0,
        complaint_grace_ms: 100.0,
    };
    let registry = KeyRegistry::new(seed, n, 2);
    let mut sim: Simulation<Message> = Simulation::new(seed, NetworkConfig::lan());
    for i in 0..n {
        let server = PrestigeServer::new(ServerId(i), config.clone(), registry.clone(), seed);
        sim.add_node(Actor::Server(ServerId(i)), Box::new(server));
    }
    for c in 0..2u64 {
        let client_cfg = ClientConfig::new(ClientId(c), config.replicas.clone(), 32, 80);
        sim.add_node(
            Actor::Client(ClientId(c)),
            Box::new(PrestigeClient::new(client_cfg, &registry)),
        );
    }

    println!("== PrestigeBFT under a leader crash ==\n");
    let observe = |sim: &Simulation<Message>, label: &str| {
        let s2: &PrestigeServer = sim.node_as(Actor::Server(ServerId(1))).unwrap();
        println!(
            "[{label}] view = {}, leader = {}, committed tx = {}, view changes confirmed = {}",
            s2.current_view(),
            s2.current_leader(),
            s2.stats().committed_tx,
            s2.stats().view_changes_confirmed,
        );
    };

    sim.run_until(SimTime::from_secs(2.0));
    observe(&sim, "t = 2 s, before crash");

    println!("\n>>> crashing the leader S1 <<<\n");
    sim.crash(Actor::Server(ServerId(0)));

    for t in [3.0, 4.0, 6.0, 10.0] {
        sim.run_until(SimTime::from_secs(t));
        observe(&sim, &format!("t = {t} s"));
    }

    let s2: &PrestigeServer = sim.node_as(Actor::Server(ServerId(1))).unwrap();
    println!(
        "\nnew leader: {} (elected in {}, never the crashed S1)",
        s2.current_leader(),
        s2.current_view()
    );
    println!(
        "reputation penalties on S2's books: {:?}",
        (0..n)
            .map(|i| (
                format!("{}", ServerId(i)),
                s2.store().current_rp(ServerId(i))
            ))
            .collect::<Vec<_>>()
    );
}
