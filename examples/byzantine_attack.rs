//! Repeated view-change attacks (F4+F2) and the reputation defense.
//!
//! Run with `cargo run --release --example byzantine_attack`.
//!
//! One of the four servers campaigns for leadership at every opportunity and
//! goes quiet once elected — the attack an active view-change protocol must
//! withstand. The example prints, second by second, the attacker's reputation
//! penalty, the expected cost of its next campaign puzzle, and the cluster's
//! throughput, showing how the reputation engine prices the attacker out and
//! throughput recovers (Figures 10–13 of the paper in miniature).

use prestigebft::prelude::*;

fn main() {
    let seed = 99;
    let n = 4u32;
    let attacker = ServerId(3);
    let mut config =
        ClusterConfig::new(n)
            .with_batch_size(100)
            .with_policy(ViewChangePolicy::Timing {
                interval_ms: 3000.0,
            });
    config.timeouts = TimeoutConfig {
        base_timeout_ms: 300.0,
        randomization_ms: 300.0,
        client_timeout_ms: 400.0,
        complaint_grace_ms: 100.0,
    };
    let registry = KeyRegistry::new(seed, n, 2);
    let mut sim: Simulation<Message> = Simulation::new(seed, NetworkConfig::lan());
    for i in 0..n {
        let behavior = if ServerId(i) == attacker {
            ByzantineBehavior::RepeatedVcQuiet(AttackStrategy::Always)
        } else {
            ByzantineBehavior::Correct
        };
        let server = PrestigeServer::with_behavior(
            ServerId(i),
            config.clone(),
            registry.clone(),
            seed,
            behavior,
        );
        sim.add_node(Actor::Server(ServerId(i)), Box::new(server));
    }
    for c in 0..2u64 {
        let client_cfg = ClientConfig::new(ClientId(c), config.replicas.clone(), 32, 80);
        sim.add_node(
            Actor::Client(ClientId(c)),
            Box::new(PrestigeClient::new(client_cfg, &registry)),
        );
    }

    println!("== Repeated view-change attack by {attacker} (strategy S1, quiet when leading) ==\n");
    println!("time  view  leader  attacker_rp  next_puzzle_cost  cluster_tx");
    let solver = PowSolver::Modeled { hash_rate: 1.0e7 };
    let mut last_tx = 0u64;
    for t in (2..=30).step_by(2) {
        sim.run_until(SimTime::from_secs(t as f64));
        let s1: &PrestigeServer = sim.node_as(Actor::Server(ServerId(0))).unwrap();
        let rp = s1.store().current_rp(attacker);
        let cost_ms = solver.expected_solve_ms(rp.max(0) as u32, 1.0e7);
        let cost = if cost_ms > 60_000.0 {
            format!("{:.1} min", cost_ms / 60_000.0)
        } else {
            format!("{cost_ms:.1} ms")
        };
        let tx = s1.stats().committed_tx;
        println!(
            "{:>3}s  {:>4}  {:>6}  {:>11}  {:>16}  {:>10} (+{})",
            t,
            s1.current_view().0,
            format!("{}", s1.current_leader()),
            rp,
            cost,
            tx,
            tx - last_tx
        );
        last_tx = tx;
    }

    let attacker_node: &PrestigeServer = sim.node_as(Actor::Server(attacker)).unwrap();
    println!(
        "\nattacker: {} campaigns, {} elections won, {:.1} s of cumulative puzzle work",
        attacker_node.stats().campaigns_started,
        attacker_node.stats().elections_won,
        attacker_node.stats().pow_ms_total / 1000.0
    );
    println!("the attacker's growing penalty makes every further campaign slower, so correct servers win the races and replication continues.");
}
