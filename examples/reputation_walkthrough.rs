//! Step-by-step reputation calculations — the paper's Appendix C, executable.
//!
//! Run with `cargo run --example reputation_walkthrough`.
//!
//! Replays the exact scenarios of Figure 4 / Appendix C against the
//! reputation engine and prints every intermediate quantity (rp_temp, δtx,
//! δvc, δ) so the numbers can be compared line by line with the paper.

use prestigebft::prelude::*;
use prestigebft::reputation::RpOutcome;

fn show(label: &str, outcome: &RpOutcome) {
    println!(
        "{label}\n    rp_temp = {}, δtx = {:.2}, δvc = {:.2}, δ = {:.2}  →  new rp = {}, new ci = {}{}",
        outcome.rp_temp,
        outcome.delta_tx,
        outcome.delta_vc,
        outcome.delta,
        outcome.new_rp,
        outcome.new_ci,
        if outcome.compensated { "  (compensated)" } else { "" }
    );
}

fn main() {
    let engine = ReputationEngine::default();
    println!("== Appendix C walkthrough: server S1 in a 4-server cluster ==\n");

    // ① S1 held leadership from V1 to V5 without replicating anything and now
    //   campaigns for V6: penalty only, rp 5 → 6.
    let case1 = engine.calc_rp(&CalcRpInput {
        current_view: View(5),
        new_view: View(6),
        current_rp: 5,
        current_ci: 1,
        latest_tx_seq: SeqNum(1),
        penalty_history: vec![1, 2, 3, 4, 5],
    });
    show(
        "① repeated repossession without replication (campaign for V6):",
        &case1,
    );

    // ② S1 replicated 20 txBlocks in V5 first: compensation of 1, rp stays 5.
    let case2 = engine.calc_rp(&CalcRpInput {
        current_view: View(5),
        new_view: View(6),
        current_rp: 5,
        current_ci: 1,
        latest_tx_seq: SeqNum(20),
        penalty_history: vec![1, 2, 3, 4, 5],
    });
    show(
        "② 20 txBlocks replicated before campaigning for V6:",
        &case2,
    );

    // ③ In V6 it replicates 30 more (50 total) and campaigns for V7 with
    //   ci = 20: δ ≈ 0.89 → no compensation, rp 5 → 6.
    let case3 = engine.calc_rp(&CalcRpInput {
        current_view: View(6),
        new_view: View(7),
        current_rp: 5,
        current_ci: 20,
        latest_tx_seq: SeqNum(50),
        penalty_history: vec![1, 2, 3, 4, 5, 5],
    });
    show(
        "③ only 50 txBlocks total (ci = 20) when campaigning for V7:",
        &case3,
    );

    // ④ With 100 txBlocks total, the same campaign earns compensation.
    let case4 = engine.calc_rp(&CalcRpInput {
        current_view: View(6),
        new_view: View(7),
        current_rp: 5,
        current_ci: 20,
        latest_tx_seq: SeqNum(100),
        penalty_history: vec![1, 2, 3, 4, 5, 5],
    });
    show("④ 100 txBlocks total when campaigning for V7:", &case4);

    // ⑤ S1 stays a follower from V7 to V14 (its penalty history fills with
    //   5s), then campaigns for V15: δvc ≈ 0.36 → compensated.
    let mut history = vec![1, 2, 3, 4];
    history.extend(std::iter::repeat_n(5, 10));
    let case5 = engine.calc_rp(&CalcRpInput {
        current_view: View(14),
        new_view: View(15),
        current_rp: 5,
        current_ci: 20,
        latest_tx_seq: SeqNum(50),
        penalty_history: history.clone(),
    });
    show("⑤ patient follower from V7–V14, campaigns for V15:", &case5);

    // ⑥ Same patience plus 400 replicated txBlocks: compensation of 2,
    //   rp drops to 4.
    let case6 = engine.calc_rp(&CalcRpInput {
        current_view: View(14),
        new_view: View(15),
        current_rp: 5,
        current_ci: 20,
        latest_tx_seq: SeqNum(400),
        penalty_history: history,
    });
    show("⑥ patient follower with 400 txBlocks replicated:", &case6);

    println!("\nThese outcomes match Figure 4c rows ①–⑤ and Appendix C example ⑥ of the paper.");
    println!("The same engine, with the same inputs, runs inside every voter when it verifies a candidate (criterion C4).");
}
