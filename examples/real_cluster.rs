//! A PrestigeBFT cluster on the *real* networking runtime (loopback
//! transport): four servers and a closed-loop client running on actual OS
//! threads with wall-clock timers — the same protocol code the simulator
//! drives, now living on the `prestige-net` runtime.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example real_cluster
//! ```
//!
//! For a multi-process TCP deployment of the same cluster, see the
//! `prestige-node` binary (`crates/net/src/bin/prestige_node.rs`) and the
//! TOML schema in `prestige_net::config`.

use prestigebft::net::cluster::LocalCluster;
use prestigebft::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    // Fast-profile timers: the paper's [300, 600] ms election range, 400 ms
    // client patience — sensible for a LAN-like loopback network.
    let config = ClusterConfig::new(4)
        .with_batch_size(100)
        .with_timeouts(TimeoutConfig::fast());

    println!("launching 4 servers + 1 client on the loopback runtime...");
    let mut cluster = LocalCluster::launch(config, 7, 1, 100);
    let start = Instant::now();

    // Phase 1: let the cluster commit under the initial leader.
    cluster.wait_until(Duration::from_secs(30), |c| c.total_committed() >= 2000);
    let before = cluster.total_committed();
    let (view, leader) = cluster.view_of(ServerId(1)).expect("server online");
    println!(
        "t={:5.2}s  committed={before:6}  view={view}  leader={leader}",
        start.elapsed().as_secs_f64()
    );

    // Phase 2: kill the leader. The active view change (client complaints →
    // ConfVC → campaigns with reputation-priced PoW → election) takes over.
    println!("killing leader {leader}...");
    cluster.crash_server(leader);
    cluster.wait_until(Duration::from_secs(30), |c| {
        c.live_servers().iter().all(|&id| {
            c.view_of(id)
                .map(|(v, l)| v > view && l != leader)
                .unwrap_or(false)
        })
    });
    let (new_view, new_leader) = cluster
        .view_of(cluster.live_servers()[0])
        .expect("survivor online");
    println!(
        "t={:5.2}s  view change complete: view={new_view}  leader={new_leader}",
        start.elapsed().as_secs_f64()
    );

    // Phase 3: commits resume under the new leader.
    cluster.wait_until(Duration::from_secs(30), |c| {
        c.total_committed() >= before + 1000
    });
    let stats = cluster.client_stats(ClientId(0)).expect("client online");
    println!(
        "t={:5.2}s  committed={}  (+{} after the view change)",
        start.elapsed().as_secs_f64(),
        stats.committed_tx,
        stats.committed_tx - before
    );

    let mut table = Table::new("real_cluster summary", &["metric", "value"]);
    table.push_row(vec!["committed tx".into(), stats.committed_tx.to_string()]);
    table.push_row(vec![
        "throughput (tx/s)".into(),
        format!(
            "{:.0}",
            stats.committed_tx as f64 / start.elapsed().as_secs_f64()
        ),
    ]);
    table.push_row(vec![
        "mean latency (ms)".into(),
        format!("{:.2}", stats.mean_latency_ms()),
    ]);
    table.push_row(vec![
        "p99 latency (ms)".into(),
        format!("{:.2}", stats.percentile_latency_ms(99.0)),
    ]);
    table.push_row(vec![
        "complaints sent".into(),
        stats.complaints_sent.to_string(),
    ]);
    println!("{}", table.to_text());

    cluster.shutdown();
}
