//! # prestigebft
//!
//! A from-scratch Rust reproduction of **PrestigeBFT** — the leader-based BFT
//! consensus algorithm with *active*, reputation-driven view changes
//! (Zhang, Pan, Tijanic, Jacobsen; ICDE 2024).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`core`] (`prestige-core`) — the PrestigeBFT server, client, Byzantine
//!   behaviours, pacemaker, and block store;
//! * [`reputation`] (`prestige-reputation`) — the reputation engine
//!   (Algorithm 1: penalization + compensation, penalty refresh);
//! * [`crypto`] (`prestige-crypto`) — SHA-256, keyed signatures, threshold
//!   quorum certificates, the reputation proof-of-work puzzle;
//! * [`sim`] (`prestige-sim`) — the deterministic discrete-event cluster
//!   simulator that stands in for the paper's VM testbed;
//! * [`net`] (`prestige-net`) — the real networking runtime: wire codec,
//!   loopback + TCP transports, and the node runtime that runs the same
//!   servers on actual sockets (see `examples/real_cluster.rs`);
//! * [`storage`] (`prestige-storage`) — the durable storage plane: the
//!   append-only hash-chained write-ahead log that servers commit through
//!   and replay on crash-restart;
//! * [`baselines`] (`prestige-baselines`) — HotStuff-style / SBFT-lite /
//!   Prosecutor-lite passive-view-change baselines;
//! * [`types`], [`workloads`], [`metrics`], [`experiments`] — shared types,
//!   workload/fault plans, measurement tools, and the harness that regenerates
//!   every figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use prestigebft::prelude::*;
//!
//! // A 4-server PrestigeBFT cluster plus one client on the simulator.
//! let config = ClusterConfig::new(4).with_batch_size(50);
//! let registry = KeyRegistry::new(7, 4, 1);
//! let mut sim: Simulation<Message> = Simulation::new(7, NetworkConfig::lan());
//! for i in 0..4 {
//!     let server = PrestigeServer::new(ServerId(i), config.clone(), registry.clone(), 7);
//!     sim.add_node(Actor::Server(ServerId(i)), Box::new(server));
//! }
//! let client_cfg = ClientConfig::new(ClientId(0), config.replicas.clone(), 32, 50);
//! sim.add_node(
//!     Actor::Client(ClientId(0)),
//!     Box::new(PrestigeClient::new(client_cfg, &registry)),
//! );
//!
//! // Run two simulated seconds and inspect the committed state.
//! sim.run_until(SimTime::from_secs(2.0));
//! let server: &PrestigeServer = sim.node_as(Actor::Server(ServerId(0))).unwrap();
//! assert!(server.stats().committed_tx > 0);
//! ```

pub use prestige_baselines as baselines;
pub use prestige_core as core;
pub use prestige_crypto as crypto;
pub use prestige_experiments as experiments;
pub use prestige_metrics as metrics;
pub use prestige_net as net;
pub use prestige_reputation as reputation;
pub use prestige_sim as sim;
pub use prestige_storage as storage;
pub use prestige_types as types;
pub use prestige_workloads as workloads;

/// The most commonly used items, re-exported flat for examples and tests.
pub mod prelude {
    pub use prestige_baselines::{BaselineProtocol, PassiveBftServer};
    pub use prestige_core::{
        AttackStrategy, ByzantineBehavior, ClientConfig, PrestigeClient, PrestigeServer, ServerRole,
    };
    pub use prestige_crypto::{KeyRegistry, PowPuzzle, PowSolver, Sha256};
    pub use prestige_experiments::{all_experiments, ExperimentConfig, Scale};
    pub use prestige_metrics::{LatencyStats, Table};
    pub use prestige_net::{LocalCluster, NodeHandle};
    pub use prestige_reputation::{CalcRpInput, ReputationEngine};
    pub use prestige_sim::{NetworkConfig, SimDuration, SimTime, Simulation};
    pub use prestige_types::{
        Actor, ClientId, ClusterConfig, Message, ReplicaSet, SeqNum, ServerId, TimeoutConfig, View,
        ViewChangePolicy,
    };
    pub use prestige_workloads::{FaultPlan, ProtocolChoice, WorkloadSpec};
}
