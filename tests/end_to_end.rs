//! Workspace-level integration tests: PrestigeBFT and the baselines running
//! side by side through the umbrella crate's public API.

use prestigebft::prelude::*;

fn prestige_cluster(
    seed: u64,
    config: &ClusterConfig,
    behaviors: &[ByzantineBehavior],
    clients: u64,
    concurrency: usize,
) -> Simulation<Message> {
    let registry = KeyRegistry::new(seed, config.n(), clients);
    let mut sim = Simulation::new(seed, NetworkConfig::lan());
    for i in 0..config.n() {
        let behavior = behaviors.get(i as usize).copied().unwrap_or_default();
        let server = PrestigeServer::with_behavior(
            ServerId(i),
            config.clone(),
            registry.clone(),
            seed,
            behavior,
        );
        sim.add_node(Actor::Server(ServerId(i)), Box::new(server));
    }
    for c in 0..clients {
        let cc = ClientConfig::new(ClientId(c), config.replicas.clone(), 32, concurrency);
        sim.add_node(
            Actor::Client(ClientId(c)),
            Box::new(PrestigeClient::new(cc, &registry)),
        );
    }
    sim
}

#[test]
fn prestige_outperforms_hotstuff_under_frequent_rotations_with_quiet_faults() {
    // The paper's central comparison in miniature: same substrate, same
    // workload, timing-policy rotations, one quiet faulty server. PrestigeBFT
    // skips the faulty server (it cannot win an election); HotStuff's passive
    // schedule keeps handing it leadership.
    let mut config =
        ClusterConfig::new(4)
            .with_batch_size(100)
            .with_policy(ViewChangePolicy::Timing {
                interval_ms: 2500.0,
            });
    config.timeouts = TimeoutConfig {
        base_timeout_ms: 800.0,
        randomization_ms: 400.0,
        client_timeout_ms: 1000.0,
        complaint_grace_ms: 200.0,
    };
    let behaviors = vec![
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::Quiet,
    ];

    let registry = KeyRegistry::new(5, 4, 2);
    let mut pb = prestige_cluster(5, &config, &behaviors, 2, 100);
    let mut hs = Simulation::new(5, NetworkConfig::lan());
    for i in 0..4 {
        let server = PassiveBftServer::with_behavior(
            ServerId(i),
            config.clone(),
            registry.clone(),
            BaselineProtocol::HotStuff,
            behaviors[i as usize],
        );
        hs.add_node(Actor::Server(ServerId(i)), Box::new(server));
    }
    for c in 0..2u64 {
        let cc = ClientConfig::new(ClientId(c), config.replicas.clone(), 32, 100);
        hs.add_node(
            Actor::Client(ClientId(c)),
            Box::new(PrestigeClient::new(cc, &registry)),
        );
    }

    pb.run_until(SimTime::from_secs(15.0));
    hs.run_until(SimTime::from_secs(15.0));

    let pb_tx = pb
        .node_as::<PrestigeServer>(Actor::Server(ServerId(0)))
        .unwrap()
        .stats()
        .committed_tx;
    let hs_tx = hs
        .node_as::<PassiveBftServer>(Actor::Server(ServerId(0)))
        .unwrap()
        .stats()
        .committed_tx;
    assert!(
        pb_tx > 1000 && hs_tx > 1000,
        "both must make progress: pb={pb_tx} hs={hs_tx}"
    );
    assert!(
        pb_tx > hs_tx,
        "PrestigeBFT ({pb_tx}) should out-commit HotStuff ({hs_tx}) under faults + rotations"
    );

    // PrestigeBFT never elected the quiet server.
    let pb_ref = pb
        .node_as::<PrestigeServer>(Actor::Server(ServerId(0)))
        .unwrap();
    assert_ne!(pb_ref.current_leader(), ServerId(3));
}

#[test]
fn safety_holds_across_protocols_and_faults() {
    // No two servers ever commit different blocks at the same sequence number,
    // under an equivocating follower.
    let config = ClusterConfig::new(4).with_batch_size(40);
    let behaviors = vec![
        ByzantineBehavior::Correct,
        ByzantineBehavior::Correct,
        ByzantineBehavior::Equivocate,
        ByzantineBehavior::Correct,
    ];
    let mut sim = prestige_cluster(11, &config, &behaviors, 2, 60);
    sim.run_until(SimTime::from_secs(4.0));
    let reference = sim
        .node_as::<PrestigeServer>(Actor::Server(ServerId(0)))
        .unwrap();
    for other_id in [1u32, 3] {
        let other = sim
            .node_as::<PrestigeServer>(Actor::Server(ServerId(other_id)))
            .unwrap();
        let common = reference
            .store()
            .latest_seq()
            .min(other.store().latest_seq());
        assert!(common.0 > 5);
        for n in 1..=common.0 {
            assert_eq!(
                reference.store().tx_block(SeqNum(n)).unwrap().header.digest,
                other.store().tx_block(SeqNum(n)).unwrap().header.digest,
                "divergence at T{n} on S{}",
                other_id + 1
            );
        }
    }
}

#[test]
fn experiment_harness_runs_a_scenario_end_to_end() {
    let mut config = ExperimentConfig::new("integration_pb", 4, ProtocolChoice::Prestige);
    config.duration_s = 2.0;
    config.warmup_s = 0.2;
    config.batch_size = 50;
    config.workload = WorkloadSpec::new(2, 50, 32);
    let outcome = prestigebft::experiments::run(&config);
    assert!(outcome.tps > 100.0);
    assert!(outcome.latency.mean_ms > 0.0);
    assert_eq!(outcome.servers.len(), 4);
}

#[test]
fn experiment_registry_covers_every_figure() {
    let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
    for expected in [
        "peak", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    ] {
        assert!(ids.contains(&expected), "missing experiment {expected}");
    }
}

#[test]
fn refresh_mechanism_resets_penalties_eventually() {
    // Drive the reputation engine hard enough that a correct server's penalty
    // would exceed the refresh threshold, then confirm the engine's refresh
    // plumbing exposes the initial values.
    let engine = ReputationEngine::default();
    assert_eq!(engine.initial_values(), (1, 1));
    assert!(engine.exceeds_refresh_threshold(9));
    assert!(!engine.exceeds_refresh_threshold(3));
}
