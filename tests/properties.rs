//! Property-based tests over the core data structures and invariants.

use prestigebft::crypto::{sign_share, QcBuilder, ThresholdVerifier};
use prestigebft::prelude::*;
use prestigebft::reputation::{delta_tx, delta_vc, PenaltyHistory};
use prestigebft::types::{Digest, QcKind, QuorumCertificate};
use proptest::prelude::*;

proptest! {
    /// SHA-256: incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_incremental_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                          chunk in 1usize..97) {
        let one_shot = Sha256::digest(&data);
        let mut hasher = Sha256::new();
        for part in data.chunks(chunk) {
            hasher.update(part);
        }
        prop_assert_eq!(hasher.finalize(), one_shot);
    }

    /// SHA-256 is deterministic and (practically) injective on small inputs.
    #[test]
    fn sha256_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(Sha256::digest(&data), Sha256::digest(&data));
    }

    /// Replica-set arithmetic: n = 3f + 1 clusters tolerate exactly f faults
    /// and quorums always intersect in at least one correct server.
    #[test]
    fn quorum_intersection(n in 1u32..200) {
        let rs = ReplicaSet::new(n);
        let f = rs.f();
        prop_assert!(3 * f < n);
        // Two quorums of size 2f+1 out of n ≤ 3f+3 overlap in ≥ f+1 servers
        // when n = 3f+1; check the arithmetic identity the proofs rely on.
        if n == 3 * f + 1 {
            prop_assert!(2 * rs.quorum() > n + f);
        }
        prop_assert_eq!(rs.confirm_quorum(), f + 1);
    }

    /// Threshold QCs verify exactly when enough distinct shares were added.
    #[test]
    fn qc_roundtrip(n in 4u32..20, extra in 0u32..3, seed in any::<u64>()) {
        let rs = ReplicaSet::new(n);
        let threshold = rs.quorum();
        let registry = KeyRegistry::new(seed, n, 0);
        let digest = Digest(Sha256::digest(&seed.to_be_bytes()));
        let mut builder = QcBuilder::new(QcKind::Commit, View(3), SeqNum(9), digest, threshold);
        let signer_count = (threshold + extra).min(n);
        for i in 0..signer_count {
            let share = sign_share(&registry, ServerId(i), QcKind::Commit, View(3), SeqNum(9), &digest).unwrap();
            builder.add_share(&registry, &share).unwrap();
        }
        let qc = builder.assemble().unwrap();
        prop_assert!(ThresholdVerifier::new(&registry).verify(&qc, threshold).is_ok());
        // It must not verify against a larger threshold than it has signers.
        prop_assert!(ThresholdVerifier::new(&registry).verify(&qc, signer_count + 1).is_err());
    }

    /// Reputation: δtx and δvc stay within the paper's stated ranges for any
    /// inputs, so the deduction is always a strict fraction of rp_temp.
    #[test]
    fn compensation_factors_bounded(ti in 0u64..1_000_000, ci in 0u64..1_000_000,
                                    rp in -10i64..1000,
                                    history in proptest::collection::vec(1i64..1000, 1..50)) {
        let dtx = delta_tx(ti, ci);
        prop_assert!((0.0..=1.0).contains(&dtx));
        let dvc = delta_vc(rp, &PenaltyHistory::new(history));
        prop_assert!(dvc > 0.0 && dvc < 1.0);
    }

    /// Reputation engine invariants (Algorithm 1): the new penalty never drops
    /// below 1, never exceeds the penalized value, and unsuccessful histories
    /// (no replication progress) are never compensated.
    #[test]
    fn calc_rp_invariants(current_rp in 1i64..50,
                          view in 1u64..1000,
                          jump in 1u64..10,
                          ti in 0u64..100_000,
                          ci in 1u64..100_000,
                          history in proptest::collection::vec(1i64..50, 1..30)) {
        let engine = ReputationEngine::default();
        let out = engine.calc_rp(&CalcRpInput {
            current_view: View(view),
            new_view: View(view + jump),
            current_rp,
            current_ci: ci,
            latest_tx_seq: SeqNum(ti),
            penalty_history: history,
        });
        prop_assert!(out.new_rp >= 1);
        prop_assert!(out.new_rp <= out.rp_temp);
        prop_assert_eq!(out.rp_temp, current_rp + jump as i64);
        if ti <= ci {
            // No incremental replication progress → no compensation.
            prop_assert_eq!(out.new_rp, out.rp_temp);
            prop_assert_eq!(out.new_ci, ci);
        }
        // The compensation index never moves backwards.
        prop_assert!(out.new_ci >= ci);
    }

    /// The PoW puzzle solver/verifier round-trips for any block digest and
    /// small penalties (real mode, scaled difficulty).
    #[test]
    fn pow_roundtrip(tag in any::<[u8; 32]>(), rp in 0i64..4, seed in any::<u64>()) {
        let solver = PowSolver::Real { bits_per_unit: 3 };
        let puzzle = PowPuzzle::new(Digest(tag), rp);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (solution, attempts) = solver.solve(&puzzle, &mut rng);
        prop_assert!(attempts >= 1.0);
        prop_assert!(solver.verify(&puzzle, &solution).is_ok());
        // A harder claim over the same solution must fail unless it happens to
        // exceed the bound.
        let harder = PowPuzzle::new(Digest(tag), rp + 8);
        if solution.hash_result.leading_zero_bits() < 3 * (rp as u32 + 8) {
            prop_assert!(solver.verify(&harder, &solution).is_err());
        }
    }

    /// vcBlock successors only ever change the elected leader's reputation
    /// entry, which is what the §4.2.4 adoption check enforces.
    #[test]
    fn vcblock_successor_changes_only_leader(n in 4u32..20, leader in 0u32..20,
                                             rp in 1i64..20, ci in 1u64..1000) {
        let leader = ServerId(leader % n);
        let genesis = prestigebft::types::VcBlock::genesis(n);
        let next = genesis.successor(View(2), leader, rp, ci, None, None);
        prop_assert!(genesis.reputation_delta_only_for(&next, leader));
        for i in 0..n {
            if ServerId(i) != leader {
                prop_assert_eq!(next.rp_of(ServerId(i)), genesis.rp_of(ServerId(i)));
                prop_assert_eq!(next.ci_of(ServerId(i)), genesis.ci_of(ServerId(i)));
            }
        }
        prop_assert_eq!(next.rp_of(leader), rp);
    }
}

/// The pre-optimization `batch_digest` specification, kept verbatim: every
/// field staged through an owned `Vec<u8>`, collected, then hashed with
/// `hash_many`. The streaming implementation must match it byte-for-byte.
fn legacy_batch_digest(view: View, n: SeqNum, batch: &[prestigebft::types::Proposal]) -> Digest {
    let mut parts: Vec<Vec<u8>> = vec![
        b"batch".to_vec(),
        view.0.to_be_bytes().to_vec(),
        n.0.to_be_bytes().to_vec(),
    ];
    for p in batch {
        parts.push(p.tx.client.0.to_be_bytes().to_vec());
        parts.push(p.tx.timestamp.to_be_bytes().to_vec());
    }
    prestigebft::crypto::hash_many(parts.iter().map(|p| p.as_slice()))
}

fn arbitrary_batch(ids: &[u64], payload: usize) -> Vec<prestigebft::types::Proposal> {
    ids.iter()
        .map(|&raw| {
            // Split one arbitrary word into a (client, timestamp) identity.
            let (client, ts) = (raw % 50, raw / 50);
            let tx = prestigebft::types::Transaction::with_size(ClientId(client), ts, payload);
            prestigebft::types::Proposal::new(tx, Digest::ZERO)
        })
        .collect()
}

proptest! {
    /// Digest compatibility: the streaming `batch_digest` equals the seed's
    /// list-of-parts spec byte-for-byte, for any batch contents.
    #[test]
    fn streaming_batch_digest_matches_legacy_spec(
        view in 1u64..1_000_000, n in 0u64..1_000_000,
        ids in proptest::collection::vec(any::<u64>(), 0..64),
        payload in 0usize..128)
    {
        let batch = arbitrary_batch(&ids, payload);
        prop_assert_eq!(
            prestigebft::core::batch_digest(View(view), SeqNum(n), &batch),
            legacy_batch_digest(View(view), SeqNum(n), &batch)
        );
    }

    /// Order sensitivity survives the streaming rewrite: swapping two distinct
    /// proposals changes the digest, exactly as the legacy spec demands.
    #[test]
    fn streaming_batch_digest_is_order_sensitive(
        ids in proptest::collection::vec(any::<u64>(), 2..32),
        i in 0usize..32, j in 0usize..32)
    {
        let batch = arbitrary_batch(&ids, 0);
        let (i, j) = (i % batch.len(), j % batch.len());
        let mut swapped = batch.clone();
        swapped.swap(i, j);
        let a = prestigebft::core::batch_digest(View(1), SeqNum(1), &batch);
        let b = prestigebft::core::batch_digest(View(1), SeqNum(1), &swapped);
        let distinct = batch[i].tx.key() != batch[j].tx.key();
        prop_assert_eq!(a != b, distinct);
        // And both orderings agree with the legacy spec.
        prop_assert_eq!(b, legacy_batch_digest(View(1), SeqNum(1), &swapped));
    }

    /// Incremental (field-streamed) hashing equals the collected-parts hash
    /// for arbitrary part lists — the invariant every protocol digest relies
    /// on after the FramedHasher rewrite.
    #[test]
    fn framed_hasher_matches_hash_many(
        parts in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..32))
    {
        let mut h = prestigebft::crypto::FramedHasher::new();
        for p in &parts {
            h.field(p);
        }
        prop_assert_eq!(
            h.finish(),
            prestigebft::crypto::hash_many(parts.iter().map(|p| p.as_slice()))
        );
    }
}

// ---------------------------------------------------------------------------
// Pipelined replication: out-of-order delivery safety
// ---------------------------------------------------------------------------

mod pipeline_delivery {
    use prestigebft::crypto::{batch_digest, sign_share, KeyRegistry, QcBuilder};
    use prestigebft::prelude::*;
    use prestigebft::sim::{Context, Effects, Process, SimRng, SimTime};
    use prestigebft::types::{Digest, Proposal, QcKind, QuorumCertificate, Transaction, TxBlock};
    use std::sync::Arc;

    /// Builds a valid QC over `digest` signed by servers 0..quorum.
    fn build_qc(
        registry: &KeyRegistry,
        kind: QcKind,
        view: View,
        n: SeqNum,
        digest: Digest,
        quorum: u32,
    ) -> QuorumCertificate {
        let mut builder = QcBuilder::new(kind, view, n, digest, quorum);
        for s in 0..quorum {
            let share = sign_share(registry, ServerId(s), kind, view, n, &digest).unwrap();
            builder.add_share(registry, &share).unwrap();
        }
        builder.assemble().unwrap()
    }

    /// The leader-side messages of one fully certified consensus instance.
    pub(super) fn instance_messages(
        registry: &KeyRegistry,
        quorum: u32,
        n: u64,
    ) -> (Message, Message) {
        let view = View(1);
        let seq = SeqNum(n);
        let batch: Vec<Proposal> = (0..3)
            .map(|i| {
                let tx = Transaction::with_size(ClientId(1), n * 10 + i, 16);
                Proposal::new(tx, Digest::ZERO)
            })
            .collect();
        let digest = batch_digest(view, seq, &batch);
        let leader = Actor::Server(ServerId(0));
        let sig = registry.key_of(leader).unwrap().sign(digest.as_ref());
        let ord = Message::Ord {
            view,
            n: seq,
            batch: Arc::new(batch.clone()),
            digest,
            sig,
        };
        let mut block = TxBlock::new(view, seq, batch.into_iter().map(|p| p.tx).collect());
        block.ordering_qc = Some(build_qc(
            registry,
            QcKind::Ordering,
            view,
            seq,
            digest,
            quorum,
        ));
        block.commit_qc = Some(build_qc(
            registry,
            QcKind::Commit,
            view,
            seq,
            digest,
            quorum,
        ));
        let commit = Message::CommitBlock {
            block: Arc::new(block),
            sig: [0u8; 32],
        };
        (ord, commit)
    }

    /// Delivers `messages` to a fresh follower in the given order and returns
    /// it for inspection.
    pub(super) fn deliver_all(messages: &[Message]) -> PrestigeServer {
        let config = ClusterConfig::new(4).with_pipeline_depth(8);
        let registry = KeyRegistry::new(41, 4, 2);
        let mut follower = PrestigeServer::new(ServerId(1), config, registry, 0);
        let mut rng = SimRng::new(5);
        let mut next_timer_id = 0u64;
        for message in messages {
            let mut effects: Effects<Message> = Effects::new();
            let mut ctx = Context::new(
                SimTime::from_ms(1.0),
                Actor::Server(ServerId(1)),
                &mut rng,
                &mut next_timer_id,
                &mut effects,
            );
            follower.on_message(Actor::Server(ServerId(0)), message.clone(), &mut ctx);
        }
        follower
    }
}

proptest! {
    /// Pipelined window safety: `Ord` and `CommitBlock` messages for a window
    /// of consecutive sequence numbers, delivered in a completely arbitrary
    /// order (including `CommitBlock` before the corresponding `Ord`, i.e.
    /// maximal delay), leave the follower's log gap-free and in sequence
    /// order, with every block chained to its predecessor.
    #[test]
    fn shuffled_pipelined_delivery_commits_gap_free(
        window in 2u64..9,
        priorities in proptest::collection::vec(any::<u64>(), 18..19),
        drop_ords in proptest::collection::vec(any::<bool>(), 9..10),
    ) {
        let registry = KeyRegistry::new(41, 4, 2);
        let quorum = 3;
        let mut messages = Vec::new();
        for n in 1..=window {
            let (ord, commit) = pipeline_delivery::instance_messages(&registry, quorum, n);
            // A dropped Ord models a delayed/lost ordering round: commits are
            // certified purely by their QCs and must still apply.
            if !drop_ords.get(n as usize).copied().unwrap_or(false) {
                messages.push(ord);
            }
            messages.push(commit);
        }
        // Deterministic shuffle: sort by the arbitrary priority vector.
        let mut keyed: Vec<(u64, Message)> = messages
            .into_iter()
            .enumerate()
            .map(|(i, m)| (priorities.get(i).copied().unwrap_or(i as u64), m))
            .collect();
        keyed.sort_by_key(|(k, _)| *k);
        let shuffled: Vec<Message> = keyed.into_iter().map(|(_, m)| m).collect();

        let follower = pipeline_delivery::deliver_all(&shuffled);

        // Gap-free, in order, fully caught up.
        prop_assert_eq!(follower.store().latest_seq(), SeqNum(window));
        prop_assert_eq!(follower.stats().committed_blocks, window);
        let mut prev_digest = None;
        for n in 1..=window {
            let block = follower.store().tx_block(SeqNum(n)).expect("block present");
            prop_assert_eq!(block.n, SeqNum(n));
            if let Some(prev) = prev_digest {
                prop_assert_eq!(block.header.prev_digest, prev, "chain broken at T{}", n);
            }
            prev_digest = Some(block.header.digest);
        }
    }

    /// Re-delivering the same certified blocks (duplicates, any order) is
    /// idempotent: the log does not change and nothing is double-committed.
    #[test]
    fn duplicate_commit_blocks_are_idempotent(
        window in 2u64..6,
        dup_priorities in proptest::collection::vec(any::<u64>(), 10..11),
    ) {
        let registry = KeyRegistry::new(41, 4, 2);
        let mut messages = Vec::new();
        for n in 1..=window {
            let (ord, commit) = pipeline_delivery::instance_messages(&registry, 3, n);
            messages.push(ord);
            messages.push(commit.clone());
            messages.push(commit); // duplicate
        }
        let mut keyed: Vec<(u64, Message)> = messages
            .into_iter()
            .enumerate()
            .map(|(i, m)| (dup_priorities.get(i).copied().unwrap_or(i as u64), m))
            .collect();
        keyed.sort_by_key(|(k, _)| *k);
        let shuffled: Vec<Message> = keyed.into_iter().map(|(_, m)| m).collect();
        let follower = pipeline_delivery::deliver_all(&shuffled);
        prop_assert_eq!(follower.store().latest_seq(), SeqNum(window));
        prop_assert_eq!(follower.stats().committed_blocks, window);
        prop_assert_eq!(follower.stats().committed_tx, window * 3);
    }
}

use rand::SeedableRng;

proptest! {
    /// Wire round trip: any `Ord` replication payload survives
    /// serialize → deserialize bit-exactly (the serde derives on
    /// `prestige-types` and the binary codec agree).
    #[test]
    fn message_ord_wire_round_trip(view in 1u64..1_000_000, n in 0u64..1_000_000,
                                   batch in proptest::collection::vec(any::<u64>(), 0..50),
                                   payload in proptest::collection::vec(any::<u8>(), 0..256),
                                   digest in any::<[u8; 32]>(), sig in any::<[u8; 32]>()) {
        let msg = Message::Ord {
            view: View(view),
            n: SeqNum(n),
            batch: std::sync::Arc::new(
                batch
                    .iter()
                    .map(|&ts| {
                        let tx =
                            prestigebft::types::Transaction::new(ClientId(ts % 7), ts, payload.clone());
                        prestigebft::types::Proposal::new(tx, Digest(digest))
                    })
                    .collect(),
            ),
            digest: Digest(digest),
            sig,
        };
        let bytes = bincode::serialize(&msg).unwrap();
        let back: Message = bincode::deserialize(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Wire (v3) round trip for view-change traffic: campaigns with and
    /// without a confirmation QC, and with certified tip claims of any span
    /// (the `commit_cert` / `tip_cert` fields added by the certified
    /// recovery plane).
    #[test]
    fn message_camp_wire_round_trip(view in 1u64..10_000, jump in 1u64..50,
                                    rp in 1i64..100, ci in 1u64..10_000,
                                    nonce in any::<u64>(), hash in any::<[u8; 32]>(),
                                    with_qc in any::<bool>(),
                                    latest in 0u64..50, span in 0u64..8) {
        let qc = |kind: QcKind, seq: u64| QuorumCertificate {
            kind,
            view: View(view),
            seq: SeqNum(seq),
            digest: Digest(hash),
            signers: vec![ServerId(0), ServerId(2)],
            aggregate: [3u8; 32],
        };
        let conf_qc = with_qc.then(|| qc(QcKind::Confirm, 0));
        let commit_cert = (latest > 0).then(|| qc(QcKind::Commit, latest));
        let tip_cert: Vec<QuorumCertificate> =
            (latest + 1..=latest + span).map(|n| qc(QcKind::Ordering, n)).collect();
        let msg = Message::Camp {
            conf_qc,
            view: View(view),
            new_view: View(view + jump),
            rp,
            ci,
            nonce,
            hash_result: Digest(hash),
            latest_seq: SeqNum(latest),
            latest_ord_seq: SeqNum(latest + span),
            commit_cert,
            tip_cert,
            latest_tx_digest: Digest(hash),
            sig: [1u8; 32],
        };
        let bytes = bincode::serialize(&msg).unwrap();
        let back: Message = bincode::deserialize(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Wire (v3) round trip for the recovery plane's certified sync
    /// payloads: `SyncResp.ordered` entries and state-transfer-carrying
    /// vcBlocks survive serialization bit-exactly.
    #[test]
    fn sync_resp_ordered_wire_round_trip(n_entries in 0usize..5, seq0 in 1u64..1000,
                                         batch in proptest::collection::vec(any::<u64>(), 0..20),
                                         hash in any::<[u8; 32]>(), view in 1u64..100) {
        let entries: Vec<prestigebft::types::OrderedEntry> = (0..n_entries)
            .map(|i| prestigebft::types::OrderedEntry {
                batch: std::sync::Arc::new(
                    batch
                        .iter()
                        .map(|&ts| {
                            let tx = prestigebft::types::Transaction::with_size(ClientId(ts % 5), ts, 16);
                            prestigebft::types::Proposal::new(tx, Digest(hash))
                        })
                        .collect(),
                ),
                qc: QuorumCertificate {
                    kind: QcKind::Ordering,
                    view: View(view),
                    seq: SeqNum(seq0 + i as u64),
                    digest: Digest(hash),
                    signers: vec![ServerId(0), ServerId(1), ServerId(2)],
                    aggregate: [7u8; 32],
                },
            })
            .collect();
        let mut vc = prestigebft::types::VcBlock::genesis(4);
        vc.committed_seq = SeqNum(seq0);
        vc.commit_cert = Some(QuorumCertificate {
            kind: QcKind::Commit,
            view: View(view),
            seq: SeqNum(seq0),
            digest: Digest(hash),
            signers: vec![ServerId(0), ServerId(1), ServerId(2)],
            aggregate: [9u8; 32],
        });
        vc.ord_tip = SeqNum(seq0 + n_entries as u64);
        vc.tip_cert = entries.iter().map(|e| e.qc.clone()).collect();
        let ckpt = (seq0 % 2 == 0).then(|| QuorumCertificate {
            kind: QcKind::Checkpoint,
            view: View(0),
            seq: SeqNum(seq0),
            digest: Digest(hash),
            signers: vec![ServerId(0), ServerId(1), ServerId(3)],
            aggregate: [11u8; 32],
        });
        let msg = Message::SyncResp {
            vc_blocks: vec![vc],
            tx_blocks: Vec::new(),
            ordered: entries,
            ckpt,
        };
        let bytes = bincode::serialize(&msg).unwrap();
        let back: Message = bincode::deserialize(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Wire (v4) round trip for the durable storage plane's checkpoint
    /// messages: signed shares and assembled checkpoint certificates
    /// survive serialization bit-exactly, as does a `Snapshot` sync request.
    #[test]
    fn checkpoint_messages_wire_round_trip(n in 1u64..10_000, hash in any::<[u8; 32]>(),
                                           view in 1u64..100, signer in 0u32..4) {
        let share = Message::CkptShare {
            n: SeqNum(n),
            view: View(view),
            digest: Digest(hash),
            share: prestigebft::types::PartialSig {
                signer: ServerId(signer),
                sig: [5u8; 32],
            },
        };
        let cert = Message::CkptCert {
            cert: QuorumCertificate {
                kind: QcKind::Checkpoint,
                view: View(0),
                seq: SeqNum(n),
                digest: Digest(hash),
                signers: vec![ServerId(0), ServerId(2), ServerId(3)],
                aggregate: [13u8; 32],
            },
        };
        let snap = Message::SyncReq {
            kind: prestigebft::types::SyncKind::Snapshot,
            from: n,
            to: n + 500,
        };
        for msg in [share, cert, snap] {
            let bytes = bincode::serialize(&msg).unwrap();
            let back: Message = bincode::deserialize(&bytes).unwrap();
            prop_assert_eq!(back, msg);
        }
    }

    /// v3 → v4 compatibility: a frame encoded under the previous wire
    /// version (no checkpoint messages, no `SyncResp.ckpt` field) is
    /// rejected *cleanly* by version negotiation — never decoded into a v4
    /// message with garbage certificate fields, never a panic.
    #[test]
    fn old_frames_are_rejected_by_version_negotiation(body in proptest::collection::vec(any::<u8>(), 0..128),
                                                      old in 0u16..4) {
        use prestigebft::net::frame::{FrameCodec, FrameError, MAGIC, WIRE_VERSION};
        prop_assert_eq!(WIRE_VERSION, 4, "this test pins the v3→v4 bump");
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&old.to_le_bytes()); // an old version
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        let codec = FrameCodec::new();
        match codec.decode::<Message>(&frame) {
            Err(FrameError::VersionMismatch { got, want }) => {
                prop_assert_eq!(got, old);
                prop_assert_eq!(want, 4);
            }
            other => prop_assert!(false, "old frame must fail version negotiation, got {:?}", other.is_ok()),
        }
    }

    /// Corrupt wire input never panics or allocates absurdly: decoding random
    /// bytes either fails cleanly or yields a message that re-encodes.
    #[test]
    fn message_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(msg) = bincode::deserialize::<Message>(&bytes) {
            let _ = bincode::serialize(&msg).unwrap();
        }
    }
}
